"""Experiment runner.

The harness every experiment and benchmark in this repository is built on:

* :func:`run_single_flow` — one bulk transfer over the (paper) path with a
  chosen congestion-control algorithm, returning goodput, Web100 counters,
  and the IFQ / cwnd / goodput time series needed for the figures;
* :func:`run_comparison` — the same workload under several algorithms with
  identical seeds (paired comparison, as in the paper's Section 4);
* :func:`run_multi_flow` — N concurrent flows sharing the bottleneck, for
  the fairness experiments.

Every run is driven by a :class:`RunSpec`-like set of keyword arguments that
is fully picklable, so parameter sweeps can fan out across processes via
:mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.metrics import improvement_percent, jain_fairness_index, utilization
from ..core.config import RestrictedSlowStartConfig
from ..core.restricted_slow_start import RestrictedSlowStart
from ..errors import ExperimentError
from ..host.apps import BulkSenderApp
from ..host.ifq import IFQMonitor
from ..instrumentation.tracer import TimeSeriesTracer
from ..sim.engine import Simulator
from ..tcp.state import LocalCongestionPolicy
from ..workloads.bulk import BulkFlowSpec
from ..workloads.scenarios import PathConfig, Scenario, build_dumbbell

__all__ = [
    "FlowResult",
    "SingleFlowResult",
    "MultiFlowResult",
    "ComparisonResult",
    "run_single_flow",
    "run_comparison",
    "run_multi_flow",
]


# ---------------------------------------------------------------------------
# result containers
# ---------------------------------------------------------------------------

@dataclass
class FlowResult:
    """Per-flow outcome extracted from the Web100 counters."""

    name: str
    algorithm: str
    duration: float
    bytes_acked: int
    goodput_bps: float
    send_stalls: int
    stall_times: list[float]
    congestion_signals: int
    timeouts: int
    fast_retransmits: int
    pkts_retrans: int
    other_reductions: int
    max_cwnd_bytes: int
    final_cwnd_segments: float
    final_ssthresh_segments: float
    smoothed_rtt: float
    min_rtt: float
    completion_time: float | None
    web100: dict = field(default_factory=dict)

    @classmethod
    def from_app(cls, app: BulkSenderApp, algorithm: str, duration: float) -> "FlowResult":
        stats = app.stats
        cc = app.connection.cc
        return cls(
            name=app.name,
            algorithm=algorithm,
            duration=duration,
            bytes_acked=stats.ThruBytesAcked,
            goodput_bps=app.goodput_bps(),
            send_stalls=stats.SendStall,
            stall_times=stats.stall_times(),
            congestion_signals=stats.CongestionSignals,
            timeouts=stats.Timeouts,
            fast_retransmits=stats.FastRetran,
            pkts_retrans=stats.PktsRetrans,
            other_reductions=stats.OtherReductions,
            max_cwnd_bytes=stats.MaxCwnd,
            final_cwnd_segments=cc.cwnd,
            final_ssthresh_segments=cc.ssthresh,
            smoothed_rtt=stats.SmoothedRTT,
            min_rtt=stats.MinRTT if np.isfinite(stats.MinRTT) else 0.0,
            completion_time=app.completion_time,
            web100=stats.snapshot(),
        )


@dataclass
class SingleFlowResult:
    """Outcome of :func:`run_single_flow` (flow metrics plus traces)."""

    config: PathConfig
    duration: float
    seed: int
    flow: FlowResult
    ifq_times: np.ndarray
    ifq_occupancy: np.ndarray
    ifq_peak: int
    ifq_drops: int
    bottleneck_drops: int
    cwnd_times: np.ndarray
    cwnd_segments: np.ndarray
    acked_times: np.ndarray
    acked_bytes: np.ndarray
    events_processed: int
    #: Which engine produced this result ("packet" or "fluid").
    backend: str = "packet"

    @property
    def goodput_bps(self) -> float:
        return self.flow.goodput_bps

    @property
    def send_stalls(self) -> int:
        return self.flow.send_stalls

    @property
    def link_utilization(self) -> float:
        return utilization(self.flow.goodput_bps, self.config.bottleneck_rate_bps)


@dataclass
class ComparisonResult:
    """Paired single-flow runs of several algorithms (same seed and path)."""

    baseline: str
    runs: dict[str, SingleFlowResult]

    def improvement_percent(self, algorithm: str) -> float:
        """Goodput improvement of ``algorithm`` over the baseline, percent."""
        base = self.runs[self.baseline].goodput_bps
        return improvement_percent(base, self.runs[algorithm].goodput_bps)

    def stall_counts(self) -> dict[str, int]:
        return {name: run.send_stalls for name, run in self.runs.items()}


@dataclass
class MultiFlowResult:
    """Outcome of :func:`run_multi_flow`."""

    config: PathConfig
    duration: float
    seed: int
    flows: list[FlowResult]
    aggregate_goodput_bps: float
    jain_index: float
    link_utilization: float
    bottleneck_drops: int
    total_send_stalls: int


# ---------------------------------------------------------------------------
# single flow
# ---------------------------------------------------------------------------

def run_single_flow(
    cc: str = "reno",
    config: PathConfig | None = None,
    duration: float = 25.0,
    seed: int = 1,
    total_bytes: int | None = None,
    cc_kwargs: dict | None = None,
    rss_config: RestrictedSlowStartConfig | None = None,
    local_congestion_policy: LocalCongestionPolicy | None = None,
    trace_interval: float = 0.05,
    run_past_duration_until_complete: bool = False,
    backend: str = "packet",
) -> SingleFlowResult:
    """Run one bulk transfer and collect everything the experiments report.

    Parameters
    ----------
    cc:
        Congestion-control registry name ("reno", "restricted", ...).
    config:
        Path parameters; defaults to the paper's ANL–LBNL path.
    duration:
        Simulated seconds (the paper's Figure 1 covers 25 s).
    seed:
        Master seed for the simulator's random streams.
    total_bytes:
        Finite transfer size, or ``None`` for a transfer that fills the whole
        duration.
    cc_kwargs:
        Extra keyword arguments for the algorithm factory (ignored when
        ``rss_config`` is given for the restricted algorithm).
    rss_config:
        Explicit :class:`RestrictedSlowStartConfig` for ``cc="restricted"``.
    local_congestion_policy:
        Override the stack's reaction to send-stalls (ablation E6).
    trace_interval:
        Sampling period of the IFQ / cwnd / goodput traces.
    run_past_duration_until_complete:
        With a finite ``total_bytes``, keep simulating (up to 10× duration)
        until the transfer completes — used by the transfer-size sweep.
    backend:
        ``"packet"`` runs the event-driven engine (ground truth);
        ``"fluid"`` runs the per-RTT difference-equation fast path
        (:mod:`repro.fluid`), typically ≥100× faster and validated against
        the packet engine by :mod:`repro.fluid.validate`.
    """
    if backend == "fluid":
        from ..fluid.backend import run_single_flow_fluid

        return run_single_flow_fluid(
            cc=cc, config=config, duration=duration, seed=seed,
            total_bytes=total_bytes, cc_kwargs=cc_kwargs, rss_config=rss_config,
            local_congestion_policy=local_congestion_policy,
            trace_interval=trace_interval,
            run_past_duration_until_complete=run_past_duration_until_complete,
        )
    if backend != "packet":
        raise ExperimentError(
            f"unknown backend {backend!r}; choose 'packet' or 'fluid'")
    if duration <= 0:
        raise ExperimentError("duration must be positive")
    cfg = config if config is not None else PathConfig()
    sim = Simulator(seed=seed)
    scenario = build_dumbbell(sim, cfg, n_flows=1)

    options = cfg.tcp_options()
    if local_congestion_policy is not None:
        options = options.replace(local_congestion_policy=local_congestion_policy)

    if cc == "restricted":
        rss = rss_config if rss_config is not None else RestrictedSlowStartConfig.for_path(cfg.rtt)
        factory = lambda ctx: RestrictedSlowStart(ctx, rss)  # noqa: E731
        app, _sink = scenario.add_bulk_flow(
            index=0, cc=factory, total_bytes=total_bytes, options=options
        )
    else:
        app, _sink = scenario.add_bulk_flow(
            index=0, cc=cc, total_bytes=total_bytes, options=options,
            cc_kwargs=cc_kwargs,
        )

    conn = app.connection
    monitor = IFQMonitor(sim, scenario.sender_ifq(0), interval=trace_interval)
    monitor.start()
    tracer = TimeSeriesTracer(sim, interval=trace_interval)
    tracer.add_probe("cwnd", lambda: conn.cc.cwnd)
    tracer.add_probe("acked", lambda: conn.stats.ThruBytesAcked)
    tracer.start()

    sim.run(until=duration)
    if run_past_duration_until_complete and total_bytes is not None and not app.completed:
        sim.run(until=duration * 10.0)

    elapsed = sim.now
    flow = FlowResult.from_app(app, algorithm=cc, duration=elapsed)
    ifq_times, ifq_occ = monitor.as_arrays()
    cwnd_times, cwnd_vals = tracer.series("cwnd").as_arrays()
    acked_times, acked_vals = tracer.series("acked").as_arrays()
    ifq_queue = scenario.sender_ifq(0).queue
    return SingleFlowResult(
        config=cfg,
        duration=elapsed,
        seed=seed,
        flow=flow,
        ifq_times=ifq_times,
        ifq_occupancy=ifq_occ,
        ifq_peak=ifq_queue.stats.peak_packets,
        ifq_drops=ifq_queue.stats.dropped,
        bottleneck_drops=scenario.bottleneck_interface().queue.stats.dropped,
        cwnd_times=cwnd_times,
        cwnd_segments=cwnd_vals,
        acked_times=acked_times,
        acked_bytes=acked_vals,
        events_processed=sim.events_processed,
    )


def run_comparison(
    algorithms: Sequence[str] = ("reno", "restricted"),
    baseline: str = "reno",
    **kwargs,
) -> ComparisonResult:
    """Run the same single-flow workload under several algorithms."""
    if baseline not in algorithms:
        raise ExperimentError(f"baseline {baseline!r} must be one of {list(algorithms)}")
    runs = {cc: run_single_flow(cc=cc, **kwargs) for cc in algorithms}
    return ComparisonResult(baseline=baseline, runs=runs)


# ---------------------------------------------------------------------------
# multiple flows
# ---------------------------------------------------------------------------

def run_multi_flow(
    specs: Sequence[BulkFlowSpec],
    config: PathConfig | None = None,
    duration: float = 25.0,
    seed: int = 1,
    shared_paths: bool = False,
) -> MultiFlowResult:
    """Run several concurrent bulk flows over one bottleneck.

    ``shared_paths=False`` gives every flow its own sender/receiver pair (the
    usual dumbbell); ``True`` puts all flows on the first pair so they also
    share the sending host's IFQ.
    """
    if not specs:
        raise ExperimentError("at least one flow spec is required")
    cfg = config if config is not None else PathConfig()
    sim = Simulator(seed=seed)
    n_paths = 1 if shared_paths else len(specs)
    scenario: Scenario = build_dumbbell(sim, cfg, n_flows=n_paths)

    apps: list[tuple[BulkSenderApp, str]] = []
    for i, spec in enumerate(specs):
        index = 0 if shared_paths else i
        rss = RestrictedSlowStartConfig.for_path(cfg.rtt)
        if spec.cc == "restricted":
            factory = lambda ctx, _rss=rss: RestrictedSlowStart(ctx, _rss)  # noqa: E731
            app, _sink = scenario.add_bulk_flow(
                index=index, cc=factory, total_bytes=spec.total_bytes,
                start_time=spec.start_time, name=f"flow{i}:{spec.cc}",
            )
        else:
            app, _sink = scenario.add_bulk_flow(
                index=index, cc=spec.cc, total_bytes=spec.total_bytes,
                start_time=spec.start_time, cc_kwargs=spec.cc_kwargs,
                name=f"flow{i}:{spec.cc}",
            )
        apps.append((app, spec.cc))

    sim.run(until=duration)

    flows = [FlowResult.from_app(app, algorithm=cc, duration=sim.now - app.start_time)
             for app, cc in apps]
    goodputs = [f.goodput_bps for f in flows]
    aggregate = float(sum(goodputs))
    return MultiFlowResult(
        config=cfg,
        duration=sim.now,
        seed=seed,
        flows=flows,
        aggregate_goodput_bps=aggregate,
        jain_index=jain_fairness_index(goodputs),
        link_utilization=utilization(aggregate, cfg.bottleneck_rate_bps),
        bottleneck_drops=scenario.bottleneck_interface().queue.stats.dropped,
        total_send_stalls=sum(f.send_stalls for f in flows),
    )
