"""Benchmark suite (pytest-benchmark harness).

A real package so that the benchmark modules' ``from .conftest import ...``
works under pytest's rootdir collection (``python -m pytest benchmarks/``).
"""
