"""Experiment registry — one entry per table/figure/ablation in DESIGN.md.

Maps the experiment identifiers used throughout the documentation (E1, E2,
...) to the callables that regenerate them, together with the benchmark
module that wraps each one.  Examples and ad-hoc scripts can iterate over
:func:`all_experiments` to drive everything from one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

from ..errors import ExperimentError
from .baselines import run_baseline_comparison
from .fairness import run_fairness
from .figure1 import run_figure1
from .sweeps import (
    bandwidth_sweep,
    ifq_size_sweep,
    rtt_sweep,
    setpoint_sweep,
    transfer_size_sweep,
)
from .throughput import run_throughput_comparison
from .tuning_ablation import run_tuning_ablation

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "all_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one reproducible experiment."""

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable
    benchmark: str
    #: Whether the runner accepts ``backend="packet"|"fluid"``.
    backend_aware: bool = False
    #: Keyword the runner takes the path configuration under.
    config_kwarg: str = "config"
    #: Keyword the runner takes the duration under.
    duration_kwarg: str = "duration"
    #: Backend this spec is pinned to (fluid variants), ``None`` = selectable.
    pinned_backend: str | None = None
    #: Experiment id of the packet counterpart for pinned variants.
    base_id: str | None = None


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "E1": ExperimentSpec(
        "E1", "Figure 1",
        "Cumulative send-stall signals over time, standard vs restricted",
        run_figure1, "benchmarks/bench_figure1.py", backend_aware=True,
    ),
    "E2": ExperimentSpec(
        "E2", "Section 4 headline",
        "Bulk-transfer throughput, standard vs restricted (~40% in the paper)",
        run_throughput_comparison, "benchmarks/bench_throughput.py", backend_aware=True,
    ),
    "E3": ExperimentSpec(
        "E3", "ablation",
        "Interface-queue (txqueuelen) size sweep",
        ifq_size_sweep, "benchmarks/bench_ifq_sweep.py", backend_aware=True,
        config_kwarg="base_config",
    ),
    "E4": ExperimentSpec(
        "E4", "ablation",
        "Round-trip-time sweep",
        rtt_sweep, "benchmarks/bench_rtt_sweep.py", backend_aware=True,
        config_kwarg="base_config",
    ),
    "E5": ExperimentSpec(
        "E5", "ablation",
        "Bottleneck bandwidth sweep",
        bandwidth_sweep, "benchmarks/bench_bandwidth_sweep.py", backend_aware=True,
        config_kwarg="base_config",
    ),
    "E6": ExperimentSpec(
        "E6", "ablation",
        "Controller set-point sweep (paper fixes 90% of the IFQ)",
        setpoint_sweep, "benchmarks/bench_setpoint_sweep.py", backend_aware=True,
        config_kwarg="base_config",
    ),
    "E7": ExperimentSpec(
        "E7", "ablation",
        "Ziegler-Nichols tuning-rule comparison",
        run_tuning_ablation, "benchmarks/bench_tuning_rules.py",
    ),
    "E8": ExperimentSpec(
        "E8", "extension",
        "Versus Limited Slow-Start, HyStart, CUBIC and NewReno",
        run_baseline_comparison, "benchmarks/bench_baselines.py",
    ),
    "E9": ExperimentSpec(
        "E9", "extension",
        "Multi-flow fairness and utilisation",
        run_fairness, "benchmarks/bench_fairness.py",
    ),
    "E10": ExperimentSpec(
        "E10", "extension",
        "Transfer-size (completion-time) sweep",
        transfer_size_sweep, "benchmarks/bench_transfer_size.py", backend_aware=True,
        config_kwarg="base_config", duration_kwarg="max_duration",
    ),
}

#: Fluid fast-path variants of the backend-aware experiments: the same
#: runner pinned to ``backend="fluid"``, registered as ``<id>F`` so sweeps
#: can be listed, scripted and regenerated on the fast path (cross-validated
#: against the packet engine by ``benchmarks/bench_fluid_vs_packet.py``).
EXPERIMENTS.update({
    f"{spec.experiment_id}F": ExperimentSpec(
        f"{spec.experiment_id}F",
        spec.paper_artifact,
        f"{spec.description} (fluid fast path)",
        partial(spec.runner, backend="fluid"),
        "benchmarks/bench_fluid_vs_packet.py",
        backend_aware=False,
        config_kwarg=spec.config_kwarg,
        duration_kwarg=spec.duration_kwarg,
        pinned_backend="fluid",
        base_id=spec.experiment_id,
    )
    for spec in list(EXPERIMENTS.values())
    if spec.backend_aware
})


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by its identifier (e.g. ``"E1"``)."""
    try:
        return EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def all_experiments() -> list[ExperimentSpec]:
    """Every registered experiment, ordered by identifier."""
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS, key=lambda s: (len(s), s))]
