"""Tests for the vectorized population fluid engine.

Covers scalar-vs-vector parity (the guard rail the vectorization rewrite is
validated against), the N=1 parity suite across the single-flow, multi-flow
and population models, open-loop churn sampling and determinism, the
flow-count dispatch threshold, and the two multi-flow model bugfixes that
landed with the engine (annotation resolution, early-exit duration).
"""

from __future__ import annotations

import json
import typing

import pytest

import repro.fluid.model as fluid_model
import repro.fluid.vector as fluid_vector
from repro.errors import ExperimentError, UnsupportedScenarioError
from repro.fluid import (
    VECTOR_FLOW_THRESHOLD,
    FlowArrivalSpec,
    FluidFlowInput,
    FluidFlowModel,
    FluidMultiFlowModel,
    FluidPopulationModel,
    cross_validate_population,
    fluid_growth_rule,
)
from repro.fluid.backend import execute_fluid_multi_flow
from repro.sim.randomness import RandomStreams
from repro.spec import MultiFlowSpec, dumbbell, execute, shared_path, spec_from_json
from repro.testing import SMALL_PATH
from repro.workloads.bulk import BulkFlowSpec

pytestmark = []


def _flows(n, cc="reno", starts=None, stops=None, ifqs=None, total=None):
    flows = []
    for i in range(n):
        flows.append(FluidFlowInput(
            name=f"f{i}", cc=cc, rule=fluid_growth_rule(cc, SMALL_PATH),
            ifq=ifqs[i] if ifqs is not None else i,
            start_time=starts[i] if starts is not None else 0.0,
            stop_time=stops[i] if stops is not None else None,
            total_bytes=total[i] if total is not None else None,
        ))
    return flows


def _mixed_flows():
    ccs = ("reno", "restricted", "limited_slow_start", "reno")
    return [
        FluidFlowInput(name=f"f{i}", cc=cc,
                       rule=fluid_growth_rule(cc, SMALL_PATH), ifq=i,
                       start_time=0.1 * i)
        for i, cc in enumerate(ccs)
    ]


def _outcome_fields(result):
    return [
        (f.bytes_acked, f.send_stalls, f.congestion_signals,
         f.fast_retransmits, f.other_reductions, f.completion_time)
        for f in result.flows
    ]


class TestScalarVectorParity:
    """The vector engine integrates the same rounds as the scalar model."""

    @pytest.mark.parametrize("kwargs", [
        dict(n=2),
        dict(n=4, starts=(0.0, 0.1, 0.2, 0.3)),
        dict(n=2, starts=(0.0, 1.0)),
        dict(n=2, ifqs=(0, 0), starts=(0.0, 0.1)),
        dict(n=3, total=(200_000, 2_000_000, None)),
        dict(n=2, stops=(3.0, None)),
    ], ids=["pair", "x4_staggered", "late_join", "shared_ifq",
            "finite_sizes", "stop_time"])
    def test_reno_mixes_match_exactly(self, kwargs):
        scalar = FluidMultiFlowModel(SMALL_PATH, _flows(**kwargs)).run(10.0)
        vector = FluidPopulationModel(SMALL_PATH, _flows(**kwargs)).run(10.0)
        assert _outcome_fields(vector) == _outcome_fields(scalar)
        assert vector.duration == scalar.duration
        assert vector.steps == scalar.steps
        assert vector.bottleneck_loss_events == scalar.bottleneck_loss_events
        for f_s, f_v in zip(scalar.flows, vector.flows):
            assert f_v.goodput_bps == pytest.approx(f_s.goodput_bps, rel=1e-9)
            assert f_v.final_cwnd == pytest.approx(f_s.final_cwnd, rel=1e-9)
            assert f_v.max_cwnd == pytest.approx(f_s.max_cwnd, rel=1e-9)
            assert f_v.stall_times == pytest.approx(f_s.stall_times)
        for key in scalar.ifq_peaks:
            assert vector.ifq_peaks[key] == pytest.approx(
                scalar.ifq_peaks[key], rel=1e-9)

    def test_heterogeneous_mix_matches_exactly(self):
        # restricted flows ride the Python side-channel inside the
        # vectorized round; per-pair dumbbells stay bit-comparable
        scalar = FluidMultiFlowModel(SMALL_PATH, _mixed_flows()).run(15.0)
        vector = FluidPopulationModel(SMALL_PATH, _mixed_flows()).run(15.0)
        assert _outcome_fields(vector) == _outcome_fields(scalar)
        for f_s, f_v in zip(scalar.flows, vector.flows):
            assert f_v.goodput_bps == pytest.approx(f_s.goodput_bps, rel=1e-9)

    def test_population_validation_grid_passes(self):
        report = cross_validate_population(duration=10.0)
        assert report.ok, "\n" + report.render()

    def test_rejects_empty_flow_list(self):
        with pytest.raises(ExperimentError):
            FluidPopulationModel(SMALL_PATH, [])


class TestSingleFlowParity:
    """N=1 parity: every engine agrees on one flow's trajectory."""

    @pytest.mark.parametrize("cc", ["reno", "limited_slow_start", "restricted"])
    @pytest.mark.parametrize("total", [None, 2_000_000],
                             ids=["unbounded", "finite"])
    def test_models_agree_on_one_flow(self, cc, total):
        single = FluidFlowModel(
            SMALL_PATH, fluid_growth_rule(cc, SMALL_PATH),
            total_bytes=total).run(10.0)
        flow = lambda: [FluidFlowInput(  # noqa: E731 - fresh rule per model
            name=f"f:{cc}", cc=cc, rule=fluid_growth_rule(cc, SMALL_PATH),
            ifq=0, total_bytes=total)]
        multi = FluidMultiFlowModel(SMALL_PATH, flow()).run(10.0).flows[0]
        pop = FluidPopulationModel(SMALL_PATH, flow()).run(10.0).flows[0]

        # multi-flow and population integrate identical rounds
        assert pop.bytes_acked == multi.bytes_acked
        assert pop.send_stalls == multi.send_stalls
        assert pop.completion_time == multi.completion_time
        assert pop.goodput_bps == pytest.approx(multi.goodput_bps, rel=1e-9)

        # the single-flow model differs only in allocator bookkeeping:
        # goodput, stall counts and completion must line up closely
        assert multi.goodput_bps == pytest.approx(single.goodput_bps, rel=0.10)
        assert multi.send_stalls == single.send_stalls
        if total is not None:
            assert single.completion_time is not None
            assert multi.completion_time == pytest.approx(
                single.completion_time, rel=0.10)


class TestFlowArrivalSpec:
    def test_sample_is_deterministic_per_seed(self):
        churn = FlowArrivalSpec(rate_per_s=80.0, mean_size_bytes=50_000)
        a = churn.sample(10.0, RandomStreams(7), n_pairs=3)
        b = churn.sample(10.0, RandomStreams(7), n_pairs=3)
        c = churn.sample(10.0, RandomStreams(8), n_pairs=3)
        assert a == b
        assert a != c

    def test_sample_statistics(self):
        churn = FlowArrivalSpec(rate_per_s=200.0, mean_size_bytes=30_000,
                                size_dist="exponential")
        arrivals = churn.sample(50.0, RandomStreams(3), n_pairs=4)
        n = len(arrivals)
        assert n == pytest.approx(200.0 * 50.0, rel=0.10)
        assert all(0.0 <= a.start_time < 50.0 for a in arrivals)
        mean_size = sum(a.total_bytes for a in arrivals) / n
        assert mean_size == pytest.approx(30_000, rel=0.10)
        # round-robin pair assignment covers every declared pair evenly
        per_pair = [sum(1 for a in arrivals if a.pair == p) for p in range(4)]
        assert min(per_pair) >= n // 4
        assert all(a.pair in range(4) for a in arrivals)

    @pytest.mark.parametrize("dist", ["fixed", "exponential", "lognormal",
                                      "pareto"])
    def test_size_distributions_hit_their_mean(self, dist):
        churn = FlowArrivalSpec(rate_per_s=400.0, mean_size_bytes=20_000,
                                size_dist=dist, max_flows=4000)
        arrivals = churn.sample(10.0, RandomStreams(5))
        mean = sum(a.total_bytes for a in arrivals) / len(arrivals)
        # the Pareto tail converges slowly; the others are tight
        rel = 0.35 if dist == "pareto" else 0.10
        assert mean == pytest.approx(20_000, rel=rel)
        if dist == "fixed":
            assert {a.total_bytes for a in arrivals} == {20_000}

    def test_max_flows_caps_the_population(self):
        churn = FlowArrivalSpec(rate_per_s=1000.0, mean_size_bytes=1000,
                                max_flows=25)
        assert len(churn.sample(60.0, RandomStreams(1))) == 25

    @pytest.mark.parametrize("bad", [
        dict(rate_per_s=0.0),
        dict(mean_size_bytes=-1.0),
        dict(size_dist="uniform"),
        dict(sigma=0.0),
        dict(alpha=1.0),
        dict(max_flows=0),
        dict(cc="vegas"),
    ])
    def test_rejects_nonsense(self, bad):
        with pytest.raises(ExperimentError):
            FlowArrivalSpec(**bad)

    def test_json_round_trip(self):
        churn = FlowArrivalSpec(rate_per_s=12.5, mean_size_bytes=1e6,
                                size_dist="pareto", alpha=1.8, max_flows=99)
        assert FlowArrivalSpec.from_dict(
            json.loads(json.dumps(churn.to_dict()))) == churn

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError, match="unknown"):
            FlowArrivalSpec.from_dict({"rate_per_s": 1.0, "burst": 2})


class TestChurnDispatch:
    def _spec(self, **kwargs):
        defaults = dict(
            scenario=dumbbell(SMALL_PATH, 2),
            duration=5.0, seed=2, backend="fluid",
            churn=FlowArrivalSpec(rate_per_s=60.0, mean_size_bytes=20_000),
        )
        defaults.update(kwargs)
        return MultiFlowSpec(**defaults)

    def test_churned_run_streams_population_into_summary(self):
        # churned flows fold into the summary at departure instead of
        # materialising outcome objects: flows/records hold declared only
        result = execute(self._spec())
        assert result.backend == "fluid"
        assert not any(f.name.startswith("churn") for f in result.flows)
        declared = [f for f in result.flows if f.name.startswith("flow")]
        assert len(declared) == 2
        assert not any(r.class_label == "churn" for r in result.records)
        summary = result.summary
        churned = summary.by_class["churn"]
        assert summary.n_flows == churned.flows + 2
        assert churned.flows == pytest.approx(60.0 * 5.0, rel=0.3)
        assert churned.completed > 0
        assert summary.fct.count > 0
        # the aggregate covers the whole population, not just declared flows
        assert (result.aggregate_goodput_bps
                == pytest.approx(summary.aggregate_goodput_bps))
        assert result.aggregate_goodput_bps > sum(
            f.goodput_bps for f in declared)

    def test_churned_run_is_deterministic(self):
        a, b = execute(self._spec()), execute(self._spec())
        assert [f.bytes_acked for f in a.flows] == [f.bytes_acked for f in b.flows]
        assert a.summary.to_dict() == b.summary.to_dict()
        c = execute(self._spec(seed=3))
        assert a.summary.to_dict() != c.summary.to_dict()

    def test_churn_requires_fluid_backend(self):
        with pytest.raises(UnsupportedScenarioError, match="churn"):
            self._spec(backend="packet")

    def test_churn_round_trips_through_json(self):
        spec = self._spec()
        decoded = spec_from_json(spec.to_json())
        assert decoded == spec
        assert decoded.cache_key() == spec.cache_key()

    def test_varied_reaches_churn_fields(self):
        varied = self._spec().varied("churn.rate_per_s", 10.0)
        assert varied.churn.rate_per_s == 10.0

    def test_flow_count_threshold_selects_the_vector_engine(self, monkeypatch):
        chosen = []
        for cls in (fluid_model.FluidMultiFlowModel,
                    fluid_vector.FluidPopulationModel):
            orig = cls.run

            def wrapper(self, duration, _orig=orig):
                chosen.append(type(self).__name__)
                return _orig(self, duration)

            monkeypatch.setattr(cls, "run", wrapper)

        small = MultiFlowSpec(
            flows=tuple(BulkFlowSpec(cc="reno") for _ in range(2)),
            config=SMALL_PATH, duration=2.0, backend="fluid")
        execute_fluid_multi_flow(small)
        big = MultiFlowSpec(
            flows=tuple(BulkFlowSpec(cc="reno")
                        for _ in range(VECTOR_FLOW_THRESHOLD + 1)),
            config=SMALL_PATH, duration=2.0, backend="fluid")
        execute_fluid_multi_flow(big)
        churned = self._spec(duration=2.0)
        execute_fluid_multi_flow(churned)
        assert chosen == ["FluidMultiFlowModel", "FluidPopulationModel",
                          "FluidPopulationModel"]

    def test_engine_override_is_validated(self):
        with pytest.raises(ExperimentError, match="engine"):
            execute_fluid_multi_flow(self._spec(), engine="quantum")

    def test_shared_path_churn(self):
        # all churned flows land on the single declared pair
        spec = self._spec(scenario=shared_path(SMALL_PATH, 2,
                                               start_times=(0.0, 0.1)))
        result = execute(spec)
        assert result.backend == "fluid"
        assert result.summary.by_class["churn"].flows > 0


class TestQuantizedStarts:
    def test_churn_arrivals_do_not_cut_rounds(self):
        # quantized starts keep the round count at ~duration/rtt: the
        # integration cost must not scale with the number of arrivals
        base = _flows(2)
        churn = [
            FluidFlowInput(name=f"c{i}", cc="reno",
                           rule=fluid_growth_rule("reno", SMALL_PATH),
                           ifq=i % 2, start_time=0.013 + 0.009 * i,
                           total_bytes=50_000, quantize_start=True)
            for i in range(200)
        ]
        model = FluidPopulationModel(SMALL_PATH, base + churn)
        model.run(5.0)
        # steps ≈ rounds × substeps × active flows; the bound that matters
        # is that no per-arrival boundary cut multiplied the round count
        assert model._boundaries(5.0).size <= 2
        declared_cuts = FluidPopulationModel(
            SMALL_PATH, base)._boundaries(5.0).size
        assert model._boundaries(5.0).size == declared_cuts

    def test_quantized_flow_still_transfers(self):
        flows = _flows(1) + [FluidFlowInput(
            name="q", cc="reno", rule=fluid_growth_rule("reno", SMALL_PATH),
            ifq=0, start_time=1.0037, total_bytes=100_000,
            quantize_start=True)]
        result = FluidPopulationModel(SMALL_PATH, flows).run(10.0)
        quantized = result.flows[1]
        assert quantized.bytes_acked == pytest.approx(100_000, rel=0.01)
        assert quantized.completion_time is not None
        # activation waits for the first round boundary at/after data_start
        assert quantized.completion_time > 1.0037 + SMALL_PATH.rtt


class TestModelBugfixes:
    def test_fluid_annotations_resolve(self):
        # model.py:864 annotated Sequence[FluidFlowInput] without importing
        # Sequence — resolving annotations used to raise NameError
        hints = typing.get_type_hints(FluidMultiFlowModel.__init__)
        assert "flows" in hints
        for obj in (FluidFlowModel.__init__, FluidPopulationModel.__init__,
                    fluid_model.FluidFlowInput, fluid_vector.FlowArrivalSpec):
            assert typing.get_type_hints(obj)

    def test_multiflow_duration_reports_actual_elapsed(self):
        # every flow finishes early: the loop breaks before the horizon and
        # the result must report the real integrated end time (the scalar
        # single-flow model always did)
        result = FluidMultiFlowModel(
            SMALL_PATH, _flows(2, total=(200_000, 300_000))).run(20.0)
        assert result.duration < 20.0
        last_completion = max(f.completion_time for f in result.flows)
        assert result.duration >= last_completion - SMALL_PATH.rtt
        assert result.duration <= last_completion + SMALL_PATH.rtt

        # the behaviour being mirrored: the single-flow model reports the
        # actual integrated time whenever it differs from the horizon
        single = FluidFlowModel(
            SMALL_PATH, fluid_growth_rule("reno", SMALL_PATH),
            total_bytes=8_000_000).run(
                2.0, run_past_duration_until_complete=True)
        assert single.completion_time is not None
        assert single.duration > 2.0
        assert single.duration == pytest.approx(single.completion_time,
                                                abs=SMALL_PATH.rtt)

    def test_multiflow_duration_is_nominal_without_early_exit(self):
        result = FluidMultiFlowModel(SMALL_PATH, _flows(2)).run(5.0)
        assert result.duration == pytest.approx(5.0)
        vector = FluidPopulationModel(SMALL_PATH, _flows(2)).run(5.0)
        assert vector.duration == pytest.approx(5.0)

    def test_population_duration_reports_actual_elapsed(self):
        result = FluidPopulationModel(
            SMALL_PATH, _flows(2, total=(200_000, 300_000))).run(20.0)
        assert result.duration < 20.0
