"""Tests for cross-traffic attachment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.host import CBRSource, OnOffSource, PoissonSource
from repro.workloads import add_cross_traffic, build_dumbbell


class TestAddCrossTraffic:
    def test_dedicated_host_pair_created(self, sim, small_path):
        scen = build_dumbbell(sim, small_path, n_flows=1)
        n_before = len(scen.topology.nodes)
        source = add_cross_traffic(scen, kind="cbr", rate_fraction=0.2)
        assert isinstance(source, CBRSource)
        assert len(scen.topology.nodes) == n_before + 2

    def test_shared_sender_nic(self, sim, small_path):
        scen = build_dumbbell(sim, small_path, n_flows=1)
        n_before = len(scen.topology.nodes)
        source = add_cross_traffic(scen, kind="cbr", rate_fraction=0.1,
                                   share_sender_nic=True)
        assert len(scen.topology.nodes) == n_before
        assert source.host is scen.sender(0)

    def test_traffic_actually_flows(self, sim, small_path):
        scen = build_dumbbell(sim, small_path, n_flows=1)
        add_cross_traffic(scen, kind="cbr", rate_fraction=0.3)
        sim.run(until=1.0)
        # last receiver host added is the cross-traffic sink
        sink = scen.receivers[-1]
        assert sink.udp_bytes_received > 0

    def test_poisson_and_onoff_kinds(self, sim, small_path):
        scen = build_dumbbell(sim, small_path, n_flows=1)
        assert isinstance(add_cross_traffic(scen, kind="poisson", rate_fraction=0.1),
                          PoissonSource)
        assert isinstance(add_cross_traffic(scen, kind="onoff", rate_fraction=0.1),
                          OnOffSource)

    def test_unknown_kind_rejected(self, sim, small_path):
        scen = build_dumbbell(sim, small_path, n_flows=1)
        with pytest.raises(ConfigurationError):
            add_cross_traffic(scen, kind="bursty")

    def test_invalid_rate_fraction(self, sim, small_path):
        scen = build_dumbbell(sim, small_path, n_flows=1)
        with pytest.raises(ConfigurationError):
            add_cross_traffic(scen, rate_fraction=0.0)
        with pytest.raises(ConfigurationError):
            add_cross_traffic(scen, rate_fraction=1.5)

    def test_cross_traffic_shares_sender_ifq_and_causes_stalls(self, sim, small_path):
        """Cross traffic on the sending host competes for the IFQ — the
        host-level congestion scenario the paper's introduction describes."""
        import repro.core  # noqa: F401
        scen = build_dumbbell(sim, small_path, n_flows=1)
        add_cross_traffic(scen, kind="cbr", rate_fraction=0.9, share_sender_nic=True)
        app, _ = scen.add_bulk_flow(cc="reno")
        sim.run(until=3.0)
        assert app.stats.SendStall >= 1
