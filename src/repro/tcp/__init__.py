"""Packet-level TCP substrate (connections, stack, congestion control)."""

from . import cc
from .connection import TCPConnection
from .options import TCPOptions
from .rto import RTOEstimator
from .segment import TCPSegment
from .stack import TCPStack
from .state import CongState, ConnState, LocalCongestionPolicy

__all__ = [
    "TCPConnection",
    "TCPStack",
    "TCPOptions",
    "TCPSegment",
    "RTOEstimator",
    "ConnState",
    "CongState",
    "LocalCongestionPolicy",
    "cc",
]
