"""Tests for the trace recorder."""

from __future__ import annotations

from repro.sim import Simulator, TraceRecorder


class TestTraceRecorder:
    def test_disabled_recorder_is_noop(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record("cat", "msg")
        assert len(recorder) == 0

    def test_records_with_fields(self):
        recorder = TraceRecorder()
        recorder.record("tcp", "stall", time=1.5, cwnd=10)
        rec = recorder.records[0]
        assert rec.time == 1.5
        assert rec.category == "tcp"
        assert rec.fields["cwnd"] == 10

    def test_as_dict_flattens(self):
        recorder = TraceRecorder()
        recorder.record("link", "loss", time=0.5, uid=3)
        d = recorder.records[0].as_dict()
        assert d == {"time": 0.5, "category": "link", "message": "loss", "uid": 3}

    def test_category_filter(self):
        recorder = TraceRecorder(categories=["tcp"])
        recorder.record("tcp", "a", time=0.0)
        recorder.record("link", "b", time=0.0)
        assert len(recorder) == 1
        assert recorder.categories_seen() == {"tcp"}

    def test_filter_by_category(self):
        recorder = TraceRecorder()
        recorder.record("a", "1", time=0.0)
        recorder.record("b", "2", time=0.0)
        recorder.record("a", "3", time=0.0)
        assert [r.message for r in recorder.filter("a")] == ["1", "3"]

    def test_max_records_overflow(self):
        recorder = TraceRecorder(max_records=2)
        for i in range(5):
            recorder.record("x", str(i), time=float(i))
        assert len(recorder) == 2
        assert recorder.overflowed

    def test_clock_binding_supplies_time(self):
        sim = Simulator(seed=1)
        recorder = TraceRecorder()
        recorder.bind_clock(sim)
        sim.schedule(2.5, lambda: recorder.record("t", "now"))
        sim.run()
        assert recorder.records[0].time == 2.5

    def test_clear(self):
        recorder = TraceRecorder(max_records=1)
        recorder.record("x", "1", time=0.0)
        recorder.record("x", "2", time=0.0)
        recorder.clear()
        assert len(recorder) == 0
        assert not recorder.overflowed

    def test_iteration(self):
        recorder = TraceRecorder()
        recorder.record("x", "1", time=0.0)
        recorder.record("x", "2", time=1.0)
        assert [r.message for r in recorder] == ["1", "2"]

    def test_simulator_has_disabled_recorder_by_default(self):
        sim = Simulator(seed=1)
        sim.trace.record("anything", "ignored")
        assert len(sim.trace) == 0
