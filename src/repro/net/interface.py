"""Network interface: queue + serialising transmitter + propagation link.

This is the component at the heart of the paper.  A
:class:`NetworkInterface` models what Linux calls the *device queue*
(``txqueuelen`` packets deep, drained at line rate by the NIC) plus the
point-to-point link behind it (serialisation at ``rate_bps``, propagation
``delay_s``, optional loss model).

The sending host's interface queue (IFQ) is the "soft component" whose
saturation generates **send-stall** signals: when the TCP layer hands the
interface a packet and :meth:`send` returns ``False``, the stack records a
local-congestion event exactly as the 2.4.x Linux kernels did.

Interfaces also track utilisation (busy-time integral) and expose the
occupancy figures the restricted-slow-start controller consumes
(:attr:`qlen`, :attr:`capacity_packets`, :meth:`occupancy`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..errors import ConfigurationError, TopologyError
from ..sim.engine import Simulator
from ..units import transmission_time
from .lossmodels import LossModel, NoLoss
from .packet import Packet
from .queues import PacketQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["NetworkInterface", "InterfaceStats"]


class InterfaceStats:
    """Counters maintained by a :class:`NetworkInterface`."""

    __slots__ = (
        "packets_sent",
        "bytes_sent",
        "packets_delivered",
        "bytes_delivered",
        "packets_lost",
        "enqueue_failures",
        "busy_time",
    )

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.packets_lost = 0
        self.enqueue_failures = 0
        self.busy_time = 0.0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class NetworkInterface:
    """A unidirectional output interface attached to a node.

    Parameters
    ----------
    sim:
        The simulator the interface schedules its transmissions on.
    node:
        Owning node; the interface registers itself with it.
    queue:
        Output queue (the IFQ for host NICs, the port buffer for routers).
    rate_bps:
        Line rate in bits per second.
    delay_s:
        One-way propagation delay to the peer node.
    name:
        Human-readable name used in traces and reports.
    loss_model:
        Optional :class:`~repro.net.lossmodels.LossModel` applied after
        serialisation (models corruption on the wire, not queue drops).
    """

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        queue: PacketQueue,
        rate_bps: float,
        delay_s: float,
        name: str = "",
        loss_model: LossModel | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"interface rate must be positive, got {rate_bps!r}")
        if delay_s < 0:
            raise ConfigurationError(f"propagation delay must be >= 0, got {delay_s!r}")
        self.sim = sim
        self.node = node
        self.queue = queue
        self.rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.name = name or f"{node.name}.if{len(node.interfaces)}"
        self.loss_model: LossModel = loss_model if loss_model is not None else NoLoss()
        self.peer_node: Optional["Node"] = None
        self.peer_interface: Optional["NetworkInterface"] = None
        self.stats = InterfaceStats()
        self._busy = False
        self._busy_since = 0.0
        #: Observers called as ``fn(interface, packet)`` when an enqueue fails.
        self.stall_listeners: list[Callable[["NetworkInterface", Packet], None]] = []
        if sim.trace.enabled and queue.trace is None:
            # Bind the run's recorder so the queue emits ``queue``/``aqm``
            # records; left at None when tracing is off so the queue hot
            # path stays a single ``is not None`` check.
            queue.trace = sim.trace
        node.add_interface(self)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, peer_node: "Node", peer_interface: "NetworkInterface | None" = None) -> None:
        """Point this interface's link at ``peer_node``.

        ``peer_interface`` is informational (used for reverse lookups when
        building bidirectional links); packets are delivered to the peer
        *node* via ``Node.receive``.
        """
        if self.peer_node is not None:
            raise TopologyError(f"interface {self.name!r} is already connected")
        self.peer_node = peer_node
        self.peer_interface = peer_interface

    # ------------------------------------------------------------------
    # occupancy / capacity accessors (consumed by the PID controller)
    # ------------------------------------------------------------------
    @property
    def qlen(self) -> int:
        """Packets currently waiting in the output queue."""
        return self.queue.qlen

    @property
    def capacity_packets(self) -> int | None:
        """Queue capacity in packets (``None`` when unbounded)."""
        return self.queue.capacity_packets

    def occupancy(self) -> float:
        """Queue occupancy as a fraction of its packet capacity."""
        return self.queue.occupancy_fraction()

    @property
    def is_busy(self) -> bool:
        """True while a packet is being serialised onto the wire."""
        return self._busy

    def utilization(self, now: float | None = None) -> float:
        """Fraction of time the transmitter has been busy since t=0."""
        now = self.sim.now if now is None else now
        busy = self.stats.busy_time
        if self._busy:
            busy += now - self._busy_since
        return busy / now if now > 0 else 0.0

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Hand a packet to the interface.

        Returns ``True`` if the packet was queued (or went straight to the
        transmitter), ``False`` if the queue rejected it.  A ``False`` return
        on a host NIC is precisely a *send-stall* in the paper's terminology;
        the TCP layer reacts according to its local-congestion policy.
        """
        if self.peer_node is None:
            raise TopologyError(f"interface {self.name!r} is not connected")
        accepted = self.queue.enqueue(packet)
        if not accepted:
            self.stats.enqueue_failures += 1
            for listener in self.stall_listeners:
                listener(self, packet)
            return False
        if not self._busy:
            self._start_transmission()
        return True

    # ------------------------------------------------------------------
    # internal transmitter state machine
    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            return
        self._busy = True
        self._busy_since = self.sim.now
        tx_time = transmission_time(packet.size_bytes, self.rate_bps)
        self.sim.schedule(tx_time, self._transmission_complete, packet)

    def _transmission_complete(self, packet: Packet) -> None:
        now = self.sim.now
        self.stats.busy_time += now - self._busy_since
        self._busy = False
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes
        if self.loss_model.should_drop(packet, self.sim.rng(f"loss:{self.name}")):
            self.stats.packets_lost += 1
            self.sim.trace.record("link", "loss", time=now, iface=self.name, uid=packet.uid)
        else:
            packet.hops += 1
            self.sim.schedule(self.delay_s, self._deliver, packet)
        if not self.queue.is_empty:
            self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        assert self.peer_node is not None
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size_bytes
        self.peer_node.receive(packet, self.peer_interface)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer_node.name if self.peer_node else "unconnected"
        return f"<NetworkInterface {self.name} -> {peer} {self.rate_bps/1e6:.1f}Mbps>"
