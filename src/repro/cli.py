"""Command-line interface.

``python -m repro`` exposes the experiment harness without writing any
Python:

.. code-block:: console

    python -m repro list                       # show the experiment registry
    python -m repro compare --duration 10      # standard vs restricted
    python -m repro run E1 --duration 25       # regenerate Figure 1
    python -m repro run E3 --duration 8 -o e3.json
    python -m repro run E12 --profile          # phase/counter telemetry table
    python -m repro run E2 --trace trace.jsonl --trace-categories queue cc
    python -m repro spec dump E3 -o e3spec.json   # serialize the spec
    python -m repro run --spec e3spec.json        # ... and replay it
    python -m repro scenario list                 # the scenario gallery
    python -m repro scenario dump parking_lot -o pl.json
    python -m repro run --scenario pl.json --duration 10
    python -m repro campaign run E3F E2F          # memoized batch (rerun = hits)
    python -m repro campaign status E3F           # hit/pending partition
    python -m repro campaign gc --all             # clear the result store
    python -m repro tune --rule allcock_modified

Experiments that return a renderable result print the same table/series the
corresponding benchmark prints; ``-o/--output`` additionally saves the raw
result (together with its originating spec and cache key) as JSON via
:mod:`repro.experiments.results_io`.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
from typing import Callable, Sequence

from .core import autotune_gains_fluid
from .errors import ReproError
from .experiments import (
    all_experiments,
    comparison_table,
    get_experiment,
    multi_flow_table,
    render_aqm_gallery,
    render_baselines,
    render_fairness,
    render_figure1,
    render_population_summary,
    render_sweep,
    render_throughput,
    render_tuning_ablation,
    run_comparison,
    single_flow_summary,
)
from .experiments.aqm_gallery import AQMGalleryResult
from .experiments.baselines import BaselineComparisonResult
from .experiments.fairness import FairnessResult
from .experiments.figure1 import Figure1Result
from .experiments.results_io import save_result
from .experiments.runner import ComparisonResult, MultiFlowResult, SingleFlowResult
from .experiments.sweeps import SweepResult
from .experiments.throughput import ThroughputResult
from .experiments.tuning_ablation import TuningAblationResult
from .obs import TRACE_CATEGORIES
from .spec import (
    MultiFlowSpec,
    ScenarioSpec,
    SpecBase,
    available_scenarios,
    dump_spec,
    execute,
    load_spec,
    scenario_factory,
    spec_from_json,
)
from .units import Mbps
from .workloads import PathConfig

__all__ = ["main", "build_parser"]


def _render_single_flow(result: SingleFlowResult) -> str:
    lines = [f"single flow — {result.flow.algorithm} ({result.backend} backend)"]
    for key, value in single_flow_summary(result).items():
        rendered = f"{value:.4g}" if isinstance(value, float) else str(value)
        lines.append(f"{key:20s} {rendered}")
    return "\n".join(lines)


#: How to render each result type the harness can produce.
_RENDERERS: dict[type, Callable] = {
    Figure1Result: render_figure1,
    ThroughputResult: render_throughput,
    SweepResult: render_sweep,
    TuningAblationResult: render_tuning_ablation,
    BaselineComparisonResult: render_baselines,
    FairnessResult: render_fairness,
    AQMGalleryResult: render_aqm_gallery,
    SingleFlowResult: _render_single_flow,
    ComparisonResult: lambda r: comparison_table(r, title="algorithm comparison").render(),
    MultiFlowResult: lambda r: multi_flow_table(r, title="multi-flow run").render(),
}


def _render_result(result) -> str | None:
    renderer = _RENDERERS.get(type(result))
    return renderer(result) if renderer is not None else None


def _path_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    if args.bandwidth_mbps is not None:
        overrides["bottleneck_rate_bps"] = Mbps(args.bandwidth_mbps)
    if args.rtt_ms is not None:
        overrides["rtt"] = args.rtt_ms / 1e3
    if args.ifq is not None:
        overrides["ifq_capacity_packets"] = args.ifq
    return overrides


def _path_config(args: argparse.Namespace) -> PathConfig:
    overrides = _path_overrides(args)
    return PathConfig().replace(**overrides) if overrides else PathConfig()


def _apply_overrides(spec: SpecBase, args: argparse.Namespace) -> SpecBase:
    """Apply the explicitly-set CLI flags to a declarative spec."""
    overrides = _path_overrides(args)
    if overrides:
        spec = spec.with_config(spec.path_config.replace(**overrides))
    if getattr(args, "duration", None) is not None:
        spec = spec.with_duration(args.duration)
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    if args.backend is not None:
        spec = spec.with_backend(args.backend)
    return spec


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Restricted Slow-Start for TCP — reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="simulation seed (default 1; validate defaults "
                             "to its tolerance-tuned seed)")
    parser.add_argument("--bandwidth-mbps", type=float, default=None,
                        help="bottleneck/NIC rate override (Mbit/s)")
    parser.add_argument("--rtt-ms", type=float, default=None,
                        help="round-trip time override (ms)")
    parser.add_argument("--ifq", type=int, default=None,
                        help="interface-queue capacity override (packets)")
    parser.add_argument("--backend", choices=("packet", "fluid"), default=None,
                        help="simulation engine: event-driven packet engine "
                             "(ground truth, the default) or the fluid-model "
                             "fast path (per-RTT difference equations, "
                             "~100x faster; covers single flows and "
                             "multi-flow dumbbell mixes)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run = sub.add_parser(
        "run", help="run a registered experiment (E1..E13), a spec file or "
                    "a scenario file")
    run.add_argument("experiment", nargs="?", default=None,
                     help="experiment id, e.g. E1 (omit with --spec/--scenario)")
    run.add_argument("--spec", dest="spec_file", default=None,
                     help="run a declarative spec from this JSON file, or "
                          "'-' for stdin (see 'repro spec dump')")
    run.add_argument("--scenario", dest="scenario_file", default=None,
                     help="run a declarative scenario from this JSON file, "
                          "or '-' for stdin (see 'repro scenario dump'); "
                          "executes every declared flow on the packet engine")
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds (experiment-specific default)")
    run.add_argument("-o", "--output", default=None,
                     help="save the raw result (plus its spec and cache key) "
                          "as JSON to this path")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="also record the run's raw result in this "
                          "content-addressed result store (write-through; "
                          "campaigns and 'repro validate --store' sharing "
                          "the spec hit it later)")
    run.add_argument("--summary", choices=("text", "json"), default=None,
                     help="additionally print the run's population summary "
                          "(FCT percentiles, concurrency series, per-class/"
                          "per-cc aggregates, Jain index) as a table or as "
                          "JSON; errors if the result type carries no "
                          "summary (single-flow runs)")
    run.add_argument("--trace", default=None, metavar="OUT.jsonl",
                     help="record the engines' structured trace to this "
                          "JSONL file (forces in-process execution — the "
                          "trace session is per-process; see the README's "
                          "'Observability' category table)")
    run.add_argument("--trace-categories", nargs="+", default=None,
                     metavar="CAT",
                     help="restrict --trace to these categories; choices: "
                          + ", ".join(sorted(TRACE_CATEGORIES)))
    run.add_argument("--profile", action="store_true",
                     help="print the run's telemetry — phase wall times "
                          "(compile/simulate/summarize/persist) and engine "
                          "work counters")
    run.add_argument("--profile-memory", action="store_true",
                     help="--profile plus the tracemalloc peak (slower; "
                          "forces in-process execution)")

    spec_cmd = sub.add_parser(
        "spec", help="inspect and serialize the declarative experiment specs")
    spec_sub = spec_cmd.add_subparsers(dest="spec_command", required=True)
    dump = spec_sub.add_parser(
        "dump", help="print an experiment's declarative spec as JSON")
    dump.add_argument("experiment", help="experiment id, e.g. E3")
    dump.add_argument("--duration", type=float, default=None,
                      help="override the spec's simulated seconds")
    dump.add_argument("-o", "--output", default=None,
                      help="write the spec JSON to this path instead of stdout")
    spec_sub.add_parser("list", help="list the experiments that carry a spec")

    scenario_cmd = sub.add_parser(
        "scenario", help="inspect and serialize the declarative scenario gallery")
    scenario_sub = scenario_cmd.add_subparsers(dest="scenario_command",
                                               required=True)
    scenario_dump = scenario_sub.add_parser(
        "dump", help="print a gallery scenario's declarative spec as JSON "
                     "(the global path flags parameterize its config)")
    scenario_dump.add_argument("name",
                               help="gallery name, e.g. dumbbell or parking_lot")
    scenario_dump.add_argument("-o", "--output", default=None,
                               help="write the scenario JSON to this path "
                                    "instead of stdout")
    scenario_sub.add_parser("list", help="list the scenario gallery")

    campaign_cmd = sub.add_parser(
        "campaign", help="memoized batch runs against the content-addressed "
                         "result store (rerun = cache hits)")
    campaign_sub = campaign_cmd.add_subparsers(dest="campaign_command",
                                               required=True)
    store_help = ("result store directory (default: $REPRO_RESULT_STORE "
                  "or ./.repro-cache)")
    campaign_run = campaign_sub.add_parser(
        "run", help="execute a campaign incrementally: store hits are "
                    "served from disk, only misses simulate")
    campaign_run.add_argument(
        "sources", nargs="+",
        help="what to run: registry experiment ids (E3, E2F, ...) and/or "
             "spec JSON files (campaign, sweep, run, comparison, "
             "multi_flow or scenario documents; '-' reads stdin)")
    campaign_run.add_argument("--store", default=None, metavar="DIR",
                              help=store_help)
    campaign_run.add_argument("--jobs", type=int, default=None,
                              help="worker processes for the misses "
                                   "(default: half the CPUs, or "
                                   "$REPRO_MAX_WORKERS)")
    campaign_run.add_argument("--manifest", default=None, metavar="PATH",
                              help="write the JSON manifest here (default: "
                                   "<store>/manifests/<campaign key>.json)")
    campaign_run.add_argument("--progress", action="store_true",
                              help="print a heartbeat line to stderr as each "
                                   "miss finishes (unit, wall, events/s)")
    campaign_run.add_argument("--telemetry", action="store_true",
                              help="also print the aggregate telemetry view "
                                   "(merged phase/counter roll-up)")
    campaign_status = campaign_sub.add_parser(
        "status", help="report the hit/pending partition without running "
                       "anything")
    campaign_status.add_argument("sources", nargs="+",
                                 help="same sources as 'campaign run'")
    campaign_status.add_argument("--store", default=None, metavar="DIR",
                                 help=store_help)
    campaign_status.add_argument("--manifest", default=None, metavar="PATH",
                                 help="also write the status manifest JSON "
                                      "to this path")
    campaign_status.add_argument("--telemetry", action="store_true",
                                 help="also print the aggregate telemetry "
                                      "view (hits contribute the telemetry "
                                      "persisted when first computed)")
    campaign_gc = campaign_sub.add_parser(
        "gc", help="drop unusable store entries (corrupt, stale schema "
                   "version, integrity failures)")
    campaign_gc.add_argument("--store", default=None, metavar="DIR",
                             help=store_help)
    campaign_gc.add_argument("--older-than-days", type=float, default=None,
                             help="additionally drop valid entries older "
                                  "than this many days")
    campaign_gc.add_argument("--max-bytes", type=int, default=None,
                             help="additionally evict surviving entries "
                                  "oldest-first (by mtime) until the store "
                                  "fits this many bytes")
    campaign_gc.add_argument("--all", action="store_true", dest="clear",
                             help="wipe every entry")

    lint = sub.add_parser(
        "lint", help="determinism & spec-hygiene static analysis "
                     "(REP001..REP006 over the source tree, or --specs for "
                     "the spec-registry audit)")
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    compare = sub.add_parser("compare", help="standard TCP vs restricted slow-start")
    compare.add_argument("--duration", type=float, default=10.0)
    compare.add_argument("--algorithms", nargs="+", default=["reno", "restricted"])

    tune = sub.add_parser("tune", help="derive controller gains for a path")
    tune.add_argument("--rule", default="allcock_modified")

    validate = sub.add_parser(
        "validate", help="cross-validate the fluid fast path against the "
                         "packet engine (single-flow grid, then the "
                         "multi-flow fairness grid)")
    validate.add_argument("--duration", type=float, default=3.0)
    validate.add_argument("--points", type=int, default=None,
                          help="limit the validation grid to the first N points")
    validate.add_argument("--skip-fairness", action="store_true",
                          help="run only the single-flow grid")
    validate.add_argument("--fairness-duration", type=float, default=None,
                          help="multi-flow mix horizon (default 20 s, where "
                               "the Jain tolerance is tuned)")
    validate.add_argument("--store", default=None, metavar="DIR",
                          help="serve grid points from (and record them "
                               "into) this content-addressed result store, "
                               "so reruns of an unchanged grid are "
                               "incremental")

    return parser


def _cmd_list() -> int:
    for entry in all_experiments():
        print(f"{entry.experiment_id:4s} {entry.paper_artifact:20s} {entry.description}")
        print(f"     benchmark: {entry.benchmark}")
    return 0


def _print_result(result, output: str | None) -> None:
    text = _render_result(result)
    if text is not None:
        print(text)
    if output:
        try:
            path = save_result(result, output)
            print(f"\nsaved raw result to {path}")
        except ReproError as exc:
            print(f"\n(could not save result: {exc})")


def _collect_summaries(result) -> list[tuple[str | None, object]]:
    """``(label, PopulationSummary)`` pairs carried by ``result``."""
    summary = getattr(result, "summary", None)
    if summary is not None:
        return [(None, summary)]
    if isinstance(result, SweepResult):
        return [(f"{result.parameter}={row[result.parameter]}", row["summary"])
                for row in result.rows if row.get("summary") is not None]
    return []


def _print_summary(result, mode: str) -> int:
    summaries = _collect_summaries(result)
    if not summaries:
        print("error: this result type carries no population summary "
              "(multi-flow runs and fairness sweeps do)", file=sys.stderr)
        return 2
    if mode == "json":
        if len(summaries) == 1 and summaries[0][0] is None:
            print(json.dumps(summaries[0][1].to_dict(), indent=2))
        else:
            print(json.dumps([{"label": label, "summary": s.to_dict()}
                              for label, s in summaries], indent=2))
        return 0
    for label, s in summaries:
        title = ("population summary" if label is None
                 else f"population summary — {label}")
        print()
        print(render_population_summary(s, title=title))
    return 0


def _load_spec_arg(value: str) -> SpecBase:
    """Load a spec document from a file path or ('-') from stdin."""
    if value == "-":
        return spec_from_json(sys.stdin.read())
    return load_spec(value)


@contextlib.contextmanager
def _run_observability(args: argparse.Namespace):
    """Install the trace/telemetry sessions the ``run`` flags ask for.

    Yields the :class:`~repro.obs.TraceBus` (or ``None``).  Both sessions
    are per-process, which is why :func:`_cmd_run` forces in-process
    execution (``max_workers=0``) whenever one is active.
    """
    from .obs import TraceBus, set_memory_tracking, trace_session

    if args.trace_categories and args.trace is None:
        raise ReproError("--trace-categories requires --trace")
    bus = None
    with contextlib.ExitStack() as stack:
        if args.trace is not None:
            if args.trace_categories:
                unknown = sorted(set(args.trace_categories) - set(TRACE_CATEGORIES))
                if unknown:
                    raise ReproError(
                        f"unknown trace categories {unknown}; choose from "
                        f"{sorted(TRACE_CATEGORIES)}")
            bus = TraceBus(categories=args.trace_categories,
                           spill_path=args.trace)
            stack.enter_context(trace_session(bus))
        if args.profile_memory:
            set_memory_tracking(True)
            stack.callback(set_memory_tracking, False)
        yield bus


def _print_observability(args: argparse.Namespace, result, bus) -> int:
    """Print the --trace / --profile reports after a run; 0 on success."""
    if bus is not None:
        bus.close()
        summary = bus.summary()
        by_category = ", ".join(f"{category}:{count}" for category, count
                                in summary["categories"].items()) or "empty"
        print(f"\ntrace: {summary['total_records']} records -> {args.trace} "
              f"({by_category})")
    if args.profile or args.profile_memory:
        telemetry = getattr(result, "telemetry", None)
        if telemetry is None:
            print("error: this result carries no telemetry (legacy runner "
                  "experiments predate the spec layer); --profile covers "
                  "spec-backed experiments and spec/scenario files",
                  file=sys.stderr)
            return 2
        print()
        print(telemetry.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    sources = [s for s in (args.experiment and "an experiment id",
                           args.spec_file and "--spec",
                           args.scenario_file and "--scenario") if s]
    if len(sources) > 1:
        print(f"error: give either {' or '.join(sources)}, not both",
              file=sys.stderr)
        return 2
    store = None
    if args.store is not None:
        from .campaign import ResultStore

        store = ResultStore(args.store)
    if args.spec_file or args.scenario_file:
        spec = _load_spec_arg(args.spec_file or args.scenario_file)
        if spec.kind == "campaign":
            print(f"error: {args.spec_file or args.scenario_file} is a "
                  "campaign spec; run it with 'repro campaign run'",
                  file=sys.stderr)
            return 2
        if args.scenario_file and not isinstance(spec, ScenarioSpec):
            print(f"error: {args.scenario_file} is a {spec.kind!r} spec, not "
                  "a scenario; run it with --spec", file=sys.stderr)
            return 2
        if isinstance(spec, ScenarioSpec):
            # a bare scenario runs every declared flow as a multi-flow job
            spec = MultiFlowSpec(scenario=spec)
        spec = _apply_overrides(spec, args)
        with _run_observability(args) as bus:
            # the trace/telemetry sessions are per-process: keep composite
            # fan-out in-process while one is active
            serial = 0 if (args.trace or args.profile_memory) else None
            result = execute(spec, max_workers=serial, store=store)
        _print_result(result, args.output)
        code = _print_observability(args, result, bus)
        if code:
            return code
        return _print_summary(result, args.summary) if args.summary else 0
    if not args.experiment:
        print("error: an experiment id, --spec <file.json> or "
              "--scenario <file.json> is required", file=sys.stderr)
        return 2
    entry = get_experiment(args.experiment)
    if args.backend is not None:
        if entry.pinned_backend is not None and args.backend != entry.pinned_backend:
            print(f"error: experiment {entry.experiment_id} is the "
                  f"{entry.pinned_backend} fast-path variant; run {entry.base_id} "
                  f"for the {args.backend} engine", file=sys.stderr)
            return 2
        if (entry.pinned_backend is None and args.backend != "packet"
                and not entry.backend_aware):
            print(f"error: experiment {entry.experiment_id} does not support "
                  f"--backend {args.backend} (packet only)", file=sys.stderr)
            return 2
    # Apply path flags on top of the experiment's own base config (don't
    # clobber a non-default spec config when no flag was given).
    overrides = _path_overrides(args)
    base_config = entry.spec.path_config if entry.spec is not None else PathConfig()
    with _run_observability(args) as bus:
        result = entry.run(
            config=base_config.replace(**overrides) if overrides else None,
            duration=args.duration,
            seed=args.seed,
            backend=args.backend if entry.backend_aware else None,
            max_workers=0 if (args.trace or args.profile_memory) else None,
            store=store,
        )
    _print_result(result, args.output)
    code = _print_observability(args, result, bus)
    if code:
        return code
    return _print_summary(result, args.summary) if args.summary else 0


def _cmd_spec(args: argparse.Namespace) -> int:
    if args.spec_command == "list":
        for entry in all_experiments():
            if entry.spec is not None:
                print(f"{entry.experiment_id:4s} {entry.spec.kind:12s} "
                      f"backend={entry.spec.backend:7s} "
                      f"cache_key={entry.spec.cache_key()[:12]}")
        return 0
    entry = get_experiment(args.experiment)
    if entry.spec is None:
        print(f"error: experiment {entry.experiment_id} has no declarative "
              "spec (legacy runner; see the README's 'Spec API' section)",
              file=sys.stderr)
        return 2
    spec = _apply_overrides(entry.spec, args)
    if args.output:
        path = dump_spec(spec, pathlib.Path(args.output))
        print(f"wrote {entry.experiment_id} spec to {path}")
    else:
        print(spec.to_json())
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        for name in available_scenarios():
            factory = scenario_factory(name)
            spec = factory()
            doc = (factory.__doc__ or "").strip().splitlines()[0]
            print(f"{name:16s} nodes={len(spec.topology.nodes):2d} "
                  f"links={len(spec.topology.links):2d} "
                  f"flows={len(spec.flows):2d}  {doc}")
        return 0
    # dump: the global path flags parameterize the factory's config
    spec = scenario_factory(args.name)(config=_path_config(args))
    if args.output:
        path = dump_spec(spec, pathlib.Path(args.output))
        print(f"wrote scenario {args.name!r} to {path}")
    else:
        print(spec.to_json())
    return 0


def _campaign_from_sources(sources: Sequence[str]):
    """Assemble the campaign to run from CLI sources (ids and spec files)."""
    from .campaign import CampaignSpec
    from .spec import SweepSpec

    ids: list[str] = []
    units: list[SpecBase] = []
    sweeps: list[SweepSpec] = []
    campaigns: list[CampaignSpec] = []
    for source in sources:
        if source == "-" or source.endswith(".json") \
                or pathlib.Path(source).exists():
            spec = _load_spec_arg(source)
            if isinstance(spec, CampaignSpec):
                campaigns.append(spec)
            elif isinstance(spec, SweepSpec):
                sweeps.append(spec)
            elif isinstance(spec, ScenarioSpec):
                units.append(MultiFlowSpec(scenario=spec))
            else:
                units.append(spec)
        else:
            ids.append(source)
    if campaigns:
        if len(campaigns) > 1 or ids or units or sweeps:
            raise ReproError(
                "give exactly one campaign file, or assemble a campaign "
                "from experiment ids / unit spec files — not a mix of "
                "campaign files with other sources")
        return campaigns[0]
    return CampaignSpec(units=tuple(units), experiments=tuple(ids),
                        sweeps=tuple(sweeps))


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import ResultStore, run_campaign, write_manifest

    # Campaign specs are content-addressed: a silently-applied global
    # override would change every unit's cache key while the user thinks
    # they are rerunning "the same" campaign — reject instead.
    ignored = [flag for flag, value in (
        ("--bandwidth-mbps", args.bandwidth_mbps),
        ("--rtt-ms", args.rtt_ms),
        ("--ifq", args.ifq),
        ("--backend", args.backend),
        ("--seed", args.seed),
    ) if value is not None]
    if ignored:
        print(f"error: campaign sources are content-addressed specs; "
              f"{', '.join(ignored)} cannot apply — regenerate the spec "
              "with the overrides instead (e.g. 'repro spec dump')",
              file=sys.stderr)
        return 2
    store = ResultStore(args.store)
    if args.campaign_command == "gc":
        print(store.stats().render())
        print(store.gc(
            older_than_s=(args.older_than_days * 86400.0
                          if args.older_than_days is not None else None),
            clear=args.clear, max_bytes=args.max_bytes).render())
        return 0
    spec = _campaign_from_sources(args.sources)
    progress = None
    if getattr(args, "progress", False):
        def progress(report, done, total):
            rate = report.events_per_s
            suffix = f", {rate:,.0f} ev/s" if rate is not None else ""
            print(f"  [{done}/{total}] {report.label} "
                  f"({report.wall_s:.2f}s{suffix})", file=sys.stderr, flush=True)
    manifest = run_campaign(spec, store,
                            max_workers=getattr(args, "jobs", None),
                            execute_misses=args.campaign_command == "run",
                            progress=progress)
    print(manifest.render())
    if getattr(args, "telemetry", False):
        print()
        print(manifest.render_telemetry())
    if args.campaign_command == "run":
        path = write_manifest(manifest, args.manifest)
        print(f"wrote manifest to {path}")
    elif args.manifest:
        path = write_manifest(manifest, args.manifest)
        print(f"wrote status manifest to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _path_config(args)
    comparison = run_comparison(tuple(args.algorithms), config=config,
                                duration=args.duration,
                                seed=args.seed if args.seed is not None else 1,
                                backend=args.backend or "packet")
    print(comparison_table(comparison, title="algorithm comparison").render())
    if "restricted" in args.algorithms and "reno" in args.algorithms:
        print(f"\nimprovement of restricted over reno: "
              f"{comparison.improvement_percent('restricted'):+.1f}%")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    # Delegate to the single implementation of the gate.  The gate runs a
    # fixed, tolerance-tuned grid on both backends with its own seed, so the
    # global path/backend flags cannot apply — reject them loudly rather
    # than validating something other than what the user asked for.
    ignored = [flag for flag, value in (
        ("--bandwidth-mbps", args.bandwidth_mbps),
        ("--rtt-ms", args.rtt_ms),
        ("--ifq", args.ifq),
        ("--backend", args.backend),
    ) if value is not None]
    if ignored:
        print(f"error: validate runs the fixed cross-validation grid on both "
              f"backends; {', '.join(ignored)} cannot apply", file=sys.stderr)
        return 2
    from .fluid.validate import main as validate_main

    argv = ["--duration", str(args.duration)]
    if args.points is not None:
        argv += ["--points", str(args.points)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.skip_fairness:
        argv += ["--skip-fairness"]
    if args.fairness_duration is not None:
        argv += ["--fairness-duration", str(args.fairness_duration)]
    if args.store is not None:
        argv += ["--store", args.store]
    return validate_main(argv)


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.backend is not None:
        print("error: tune always derives gains via fluid relay tuning; "
              "--backend cannot apply", file=sys.stderr)
        return 2
    config = _path_config(args)
    result = autotune_gains_fluid(config, rule=args.rule)
    for key, value in result.summary().items():
        print(f"{key:12s} {value}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "spec":
            return _cmd_spec(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "lint":
            from .lint.cli import run_lint

            return run_lint(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "validate":
            return _cmd_validate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
