"""Store-and-forward router.

Routers forward packets between interfaces according to a destination-based
routing table.  Each output interface has its own (finite) buffer, so the
bottleneck router in the dumbbell topology drops packets exactly where a
real router would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import RoutingError
from .address import Address
from .node import Node
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interface import NetworkInterface

__all__ = ["Router"]


class Router(Node):
    """A destination-routed store-and-forward router."""

    def __init__(self, name: str, address: Address) -> None:
        super().__init__(name, address)
        self.routing_table: dict[Address, "NetworkInterface"] = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.no_route_drops = 0

    # ------------------------------------------------------------------
    def set_route(self, destination: Address, interface: "NetworkInterface") -> None:
        """Install (or replace) the route for ``destination``."""
        if interface.node is not self:
            raise RoutingError(
                f"cannot route via interface {interface.name!r}: it belongs to "
                f"{interface.node.name!r}, not {self.name!r}"
            )
        self.routing_table[destination] = interface

    def route_for(self, destination: Address) -> "NetworkInterface":
        """Look up the output interface for ``destination``."""
        try:
            return self.routing_table[destination]
        except KeyError:
            raise RoutingError(
                f"router {self.name!r} has no route for destination {destination}"
            ) from None

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, interface: "NetworkInterface") -> None:
        """Forward an arriving packet toward its destination."""
        self._count_arrival(packet)
        if packet.dst == self.address:
            # Routers are not traffic endpoints in this simulator; a packet
            # addressed to the router itself is silently consumed.
            return
        try:
            out_iface = self.route_for(packet.dst)
        except RoutingError:
            self.no_route_drops += 1
            return
        if out_iface.send(packet):
            self.packets_forwarded += 1
        else:
            self.packets_dropped += 1

    def total_buffer_occupancy(self) -> int:
        """Packets queued across all output interfaces."""
        return sum(iface.qlen for iface in self.interfaces)
