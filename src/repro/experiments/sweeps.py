"""Parameter-sweep experiments (E3, E4, E5, E6, E10).

The paper's evaluation is a single operating point (100 Mbit/s, 60 ms,
txqueuelen 100).  These sweeps map out how the comparison behaves around
that point, which both sanity-checks the reproduction (the advantage should
vanish when the IFQ is larger than the BDP) and covers the ablations listed
in ``DESIGN.md``:

* :func:`ifq_size_sweep` (E3) — ``txqueuelen`` from 25 to 1000 packets;
* :func:`rtt_sweep` (E4) — 10 to 200 ms;
* :func:`bandwidth_sweep` (E5) — 10 to 622 Mbit/s;
* :func:`setpoint_sweep` (E6) — controller set point 0.5 to 1.0;
* :func:`transfer_size_sweep` (E10) — completion time of 1 MB to 256 MB
  transfers.

Every sweep is declaratively described by a :class:`repro.spec.SweepSpec`
(built by the ``*_sweep_spec`` helpers, which the experiment registry also
uses) and executed by :func:`execute_sweep_spec`: the grid expands into one
:class:`~repro.spec.RunSpec` per (point, algorithm), fans out across the
process pool (workers pickle one spec each), and the runs are folded into a
:class:`SweepResult` whose rows carry, per parameter value, the goodput and
stall counts of the compared algorithms.  The historical keyword signatures
remain as thin wrappers that build a spec and execute it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.tables import Table
from ..core.config import RestrictedSlowStartConfig
from ..errors import ExperimentError
from ..obs.telemetry import aggregate
from ..spec import MultiFlowSpec, RunSpec, SweepSpec, execute
from ..units import MB, Mbps, format_rate
from ..workloads.scenarios import PathConfig
from .parallel import map_specs

__all__ = [
    "SweepResult",
    "execute_sweep_spec",
    "ifq_sweep_spec",
    "rtt_sweep_spec",
    "bandwidth_sweep_spec",
    "setpoint_sweep_spec",
    "fairness_sweep_spec",
    "transfer_size_sweep_spec",
    "ifq_size_sweep",
    "rtt_sweep",
    "bandwidth_sweep",
    "setpoint_sweep",
    "transfer_size_sweep",
    "fairness_start_sweep",
    "render_sweep",
]

#: Algorithms compared at every sweep point.
SWEEP_ALGORITHMS = ("reno", "restricted")


@dataclass
class SweepResult:
    """Rows of a one-dimensional parameter sweep."""

    name: str
    parameter: str
    rows: list[dict] = field(default_factory=list)
    #: The declarative spec that produced this result (provenance).
    spec: SweepSpec | None = None

    def column(self, key: str) -> list:
        """Values of ``key`` across rows (missing keys become ``None``)."""
        return [row.get(key) for row in self.rows]

    def row_for(self, value) -> dict:
        """The row whose parameter equals ``value``."""
        for row in self.rows:
            if row[self.parameter] == value:
                return row
        raise ExperimentError(f"no row with {self.parameter}={value!r}")


# ---------------------------------------------------------------------------
# spec execution
# ---------------------------------------------------------------------------

def _sweep_row(spec: SweepSpec, value, results: dict[str, object]) -> dict:
    row: dict = {spec.row_key: value}
    if spec.row_style == "comparison":
        for algo, res in results.items():
            row[f"{algo}_goodput_bps"] = res.flow.goodput_bps
            row[f"{algo}_send_stalls"] = res.flow.send_stalls
            row[f"{algo}_retrans"] = res.flow.pkts_retrans
            row[f"{algo}_utilization"] = res.link_utilization
        if {"reno", "restricted"} <= set(results):
            base = row["reno_goodput_bps"]
            row["improvement_percent"] = (
                (row["restricted_goodput_bps"] - base) / base * 100.0
                if base > 0 else 0.0)
    elif spec.row_style == "single":
        for algo, res in results.items():
            row[f"{algo}_goodput_bps"] = res.flow.goodput_bps
            row[f"{algo}_send_stalls"] = res.flow.send_stalls
            row[f"{algo}_utilization"] = res.link_utilization
            row["ifq_peak"] = res.ifq_peak
            row["ifq_drops"] = res.ifq_drops
    elif spec.row_style == "fairness":
        # one MultiFlowResult per point: the scenario declares the mix
        res = results["flows"]
        row["aggregate_goodput_bps"] = res.aggregate_goodput_bps
        row["jain_index"] = res.jain_index
        row["utilization"] = res.link_utilization
        row["total_send_stalls"] = res.total_send_stalls
        row["bottleneck_drops"] = res.bottleneck_drops
        for algo in sorted({f.algorithm for f in res.flows}):
            row[f"{algo}_goodput_bps"] = float(sum(
                f.goodput_bps for f in res.flows if f.algorithm == algo))
        # the canonical population summary rides along (skipped by the
        # table renderer; surfaced by `repro run ... --summary`)
        row["summary"] = res.summary
    else:  # "completion"
        for algo, res in results.items():
            row[f"{algo}_completion_time"] = res.flow.completion_time
            row[f"{algo}_goodput_bps"] = res.flow.goodput_bps
            row[f"{algo}_send_stalls"] = res.flow.send_stalls
        if {"reno", "restricted"} <= set(results):
            reno_time = row["reno_completion_time"]
            restricted_time = row["restricted_completion_time"]
            row["speedup"] = (reno_time / restricted_time
                              if reno_time and restricted_time else None)
    return row


def execute_sweep_spec(spec: SweepSpec, *, max_workers: int | None = None,
                       store=None) -> SweepResult:
    """Expand a sweep grid into run specs, fan out, fold into rows.

    ``store`` (a :class:`repro.campaign.ResultStore`) records every
    per-point result write-through before the fold discards it, so a
    campaign naming the same grid points hits them later.
    """
    result = SweepResult(name=spec.name, parameter=spec.row_key)
    points = spec.point_specs()
    if not points:
        return result
    flat = [run_spec for _, by_algo in points for run_spec in by_algo.values()]
    executed = map_specs(flat, max_workers=max_workers)
    if store is not None:
        for run in executed:
            store.put(run)
    runs = iter(executed)
    for value, by_algo in points:
        results = {algo: next(runs) for algo in by_algo}
        result.rows.append(_sweep_row(spec, value, results))
    # the fold discards the per-point results; their telemetry survives as
    # one roll-up (child RunTelemetry objects pickle back from workers)
    result.telemetry = aggregate(executed)
    return result


# ---------------------------------------------------------------------------
# declarative sweep builders (reused by the experiment registry)
# ---------------------------------------------------------------------------

def ifq_sweep_spec(
    sizes: Sequence[int] = (25, 50, 100, 200, 400, 1000),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    backend: str = "packet",
) -> SweepSpec:
    """Declarative sender ``txqueuelen`` sweep (E3)."""
    base = base_config if base_config is not None else PathConfig()
    return SweepSpec(
        name="ifq_size_sweep",
        parameter="config.ifq_capacity_packets",
        values=tuple(int(size) for size in sizes),
        base=RunSpec(config=base, duration=duration, seed=seed, backend=backend),
    )


def rtt_sweep_spec(
    rtts: Sequence[float] = (0.010, 0.030, 0.060, 0.120, 0.200),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    backend: str = "packet",
) -> SweepSpec:
    """Declarative round-trip-time sweep (E4).

    ``retune_rss`` rederives the restricted controller's gains at every
    point — they scale with the RTT exactly as the tuning procedure would.
    """
    base = base_config if base_config is not None else PathConfig()
    return SweepSpec(
        name="rtt_sweep",
        parameter="config.rtt",
        values=tuple(float(rtt) for rtt in rtts),
        base=RunSpec(config=base, duration=duration, seed=seed, backend=backend),
        retune_rss=True,
    )


def bandwidth_sweep_spec(
    rates_mbps: Sequence[float] = (10, 50, 100, 250, 622),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    backend: str = "packet",
) -> SweepSpec:
    """Declarative bottleneck (and NIC) rate sweep (E5)."""
    base = base_config if base_config is not None else PathConfig()
    return SweepSpec(
        name="bandwidth_sweep",
        parameter="config.bottleneck_rate_bps",
        values=tuple(float(rate) for rate in rates_mbps),
        field_values=tuple(Mbps(rate) for rate in rates_mbps),
        parameter_label="bottleneck_mbps",
        base=RunSpec(config=base, duration=duration, seed=seed, backend=backend),
    )


def setpoint_sweep_spec(
    setpoints: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95, 1.0),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    backend: str = "packet",
) -> SweepSpec:
    """Declarative PID set-point sweep — restricted only (E6)."""
    base = base_config if base_config is not None else PathConfig()
    return SweepSpec(
        name="setpoint_sweep",
        parameter="rss_config.setpoint_fraction",
        values=tuple(float(sp) for sp in setpoints),
        base=RunSpec(cc="restricted", config=base, duration=duration, seed=seed,
                     backend=backend,
                     rss_config=RestrictedSlowStartConfig.for_path(base.rtt)),
        algorithms=("restricted",),
        row_style="single",
        retune_rss=True,
    )


def fairness_sweep_spec(
    start_times: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    n_flows: int = 2,
    ccs: str | Sequence[str] = "reno",
    duration: float = 15.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    backend: str = "packet",
) -> SweepSpec:
    """Declarative fairness sweep varying a ``scenario.*`` dotted field (E12).

    The grid staggers the *second* flow's start across ``start_times`` on
    an ``n_flows`` dumbbell — the dotted parameter
    ``"scenario.flows.1.start_time"`` addresses the declared scenario
    directly, so any scenario field (per-flow ``total_bytes``, ``duration``,
    link queue sizes, ...) sweeps the same way.  ``backend="fluid"`` runs
    every point on the N-flow coupled fluid model.
    """
    from ..spec import dumbbell

    if n_flows < 2:
        raise ExperimentError("the fairness sweep staggers flow 1; need >= 2 flows")
    base_cfg = base_config if base_config is not None else PathConfig()
    base = MultiFlowSpec(
        scenario=dumbbell(base_cfg, n_flows, ccs=ccs),
        duration=duration, seed=seed, backend=backend)
    return SweepSpec(
        name="fairness_start_sweep",
        parameter="scenario.flows.1.start_time",
        values=tuple(float(t) for t in start_times),
        base=base,
        parameter_label="flow1_start",
        row_style="fairness",
    )


def transfer_size_sweep_spec(
    sizes_bytes: Sequence[float] = (MB(1), MB(8), MB(32), MB(128), MB(256)),
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_duration: float = 60.0,
    backend: str = "packet",
) -> SweepSpec:
    """Declarative transfer-size (completion-time) sweep (E10)."""
    base = base_config if base_config is not None else PathConfig()
    return SweepSpec(
        name="transfer_size_sweep",
        parameter="total_bytes",
        values=tuple(float(size) for size in sizes_bytes),
        field_values=tuple(int(size) for size in sizes_bytes),
        parameter_label="transfer_bytes",
        row_style="completion",
        base=RunSpec(config=base, duration=max_duration, seed=seed, backend=backend),
    )


# ---------------------------------------------------------------------------
# deprecated keyword wrappers (construct specs; see README "Spec API")
# ---------------------------------------------------------------------------

def ifq_size_sweep(
    sizes: Sequence[int] = (25, 50, 100, 200, 400, 1000),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the sender ``txqueuelen`` (E3)."""
    spec = ifq_sweep_spec(sizes=sizes, duration=duration, seed=seed,
                          base_config=base_config, backend=backend)
    return execute(spec, max_workers=max_workers)


def rtt_sweep(
    rtts: Sequence[float] = (0.010, 0.030, 0.060, 0.120, 0.200),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the path round-trip time (E4)."""
    spec = rtt_sweep_spec(rtts=rtts, duration=duration, seed=seed,
                          base_config=base_config, backend=backend)
    return execute(spec, max_workers=max_workers)


def bandwidth_sweep(
    rates_mbps: Sequence[float] = (10, 50, 100, 250, 622),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the bottleneck (and NIC) rate (E5)."""
    spec = bandwidth_sweep_spec(rates_mbps=rates_mbps, duration=duration, seed=seed,
                                base_config=base_config, backend=backend)
    return execute(spec, max_workers=max_workers)


def setpoint_sweep(
    setpoints: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95, 1.0),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the PID set point (the paper fixes 0.9) — restricted only (E6)."""
    spec = setpoint_sweep_spec(setpoints=setpoints, duration=duration, seed=seed,
                               base_config=base_config, backend=backend)
    return execute(spec, max_workers=max_workers)


def transfer_size_sweep(
    sizes_bytes: Sequence[float] = (MB(1), MB(8), MB(32), MB(128), MB(256)),
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_duration: float = 60.0,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Completion time of finite transfers under both algorithms (E10)."""
    spec = transfer_size_sweep_spec(sizes_bytes=sizes_bytes, seed=seed,
                                    base_config=base_config,
                                    max_duration=max_duration, backend=backend)
    return execute(spec, max_workers=max_workers)


def fairness_start_sweep(
    start_times: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    n_flows: int = 2,
    ccs: str | Sequence[str] = "reno",
    duration: float = 15.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Stagger the second flow's start across a grid (E12)."""
    spec = fairness_sweep_spec(start_times=start_times, n_flows=n_flows,
                               ccs=ccs, duration=duration, seed=seed,
                               base_config=base_config, backend=backend)
    return execute(spec, max_workers=max_workers)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_sweep(result: SweepResult) -> str:
    """Render a sweep as an aligned text table."""
    if not result.rows:
        return f"{result.name}: (no rows)"
    # "summary" holds a PopulationSummary object, not a scalar cell — it is
    # rendered by `repro run ... --summary`, not by the sweep table
    columns = [result.parameter] + [
        k for k in result.rows[0] if k not in (result.parameter, "summary")]
    table = Table(columns, title=result.name)
    for row in result.rows:
        cells = []
        for col in columns:
            value = row.get(col)
            if value is None:
                cells.append("-")
            elif "goodput_bps" in col:
                cells.append(format_rate(value))
            elif isinstance(value, float):
                cells.append(f"{value:.3g}")
            else:
                cells.append(str(value))
        table.add_row(*cells)
    return table.render()
