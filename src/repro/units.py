"""Unit helpers used throughout the simulator.

The simulator uses a small, consistent set of base units:

* **time** — seconds (``float``)
* **data sizes** — bytes (``int`` where exactness matters, ``float`` in
  derived quantities)
* **rates** — bits per second (``float``)

This module provides conversion helpers so the rest of the code base (and
user-facing configuration) can be written in natural units — e.g.
``Mbps(100)``, ``ms(60)`` — without sprinkling magic constants around.
"""

from __future__ import annotations

from .errors import ConfigurationError

__all__ = [
    "BITS_PER_BYTE",
    "DEFAULT_MSS",
    "DEFAULT_HEADER_BYTES",
    "DEFAULT_SEGMENT_BYTES",
    "ACK_BYTES",
    "bps",
    "Kbps",
    "Mbps",
    "Gbps",
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "us",
    "ms",
    "seconds",
    "minutes",
    "bytes_to_bits",
    "bits_to_bytes",
    "transmission_time",
    "bandwidth_delay_product_bytes",
    "bandwidth_delay_product_packets",
    "throughput_bps",
    "format_rate",
    "format_bytes",
    "format_time",
]

#: Number of bits in a byte (link serialisation uses this constant).
BITS_PER_BYTE = 8

#: Default TCP maximum segment size (payload bytes) used by the simulator.
DEFAULT_MSS = 1448

#: Bytes of TCP/IP/Ethernet header overhead accounted on the wire.
DEFAULT_HEADER_BYTES = 52

#: Default wire size of a full-MSS data segment.
DEFAULT_SEGMENT_BYTES = DEFAULT_MSS + DEFAULT_HEADER_BYTES

#: Wire size of a pure ACK segment.
ACK_BYTES = DEFAULT_HEADER_BYTES


# ---------------------------------------------------------------------------
# rates
# ---------------------------------------------------------------------------

def bps(value: float) -> float:
    """Return ``value`` interpreted as bits per second."""
    return float(value)


def Kbps(value: float) -> float:
    """Return ``value`` kilobits per second expressed in bits per second."""
    return float(value) * 1e3


def Mbps(value: float) -> float:
    """Return ``value`` megabits per second expressed in bits per second."""
    return float(value) * 1e6


def Gbps(value: float) -> float:
    """Return ``value`` gigabits per second expressed in bits per second."""
    return float(value) * 1e9


# ---------------------------------------------------------------------------
# sizes
# ---------------------------------------------------------------------------

def KB(value: float) -> float:
    """Decimal kilobytes to bytes."""
    return float(value) * 1e3


def MB(value: float) -> float:
    """Decimal megabytes to bytes."""
    return float(value) * 1e6


def GB(value: float) -> float:
    """Decimal gigabytes to bytes."""
    return float(value) * 1e9


def KiB(value: float) -> float:
    """Binary kibibytes to bytes."""
    return float(value) * 1024.0


def MiB(value: float) -> float:
    """Binary mebibytes to bytes."""
    return float(value) * 1024.0 ** 2


def GiB(value: float) -> float:
    """Binary gibibytes to bytes."""
    return float(value) * 1024.0 ** 3


# ---------------------------------------------------------------------------
# times
# ---------------------------------------------------------------------------

def us(value: float) -> float:
    """Microseconds to seconds."""
    return float(value) * 1e-6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return float(value) * 1e-3


def seconds(value: float) -> float:
    """Identity helper for readability at call sites."""
    return float(value)


def minutes(value: float) -> float:
    """Minutes to seconds."""
    return float(value) * 60.0


# ---------------------------------------------------------------------------
# conversions and derived quantities
# ---------------------------------------------------------------------------

def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to a bit count."""
    return float(nbytes) * BITS_PER_BYTE


def bits_to_bytes(nbits: float) -> float:
    """Convert a bit count to a byte count."""
    return float(nbits) / BITS_PER_BYTE


def transmission_time(nbytes: float, rate_bps: float) -> float:
    """Serialisation delay of ``nbytes`` on a link of ``rate_bps``.

    Parameters
    ----------
    nbytes:
        Packet size in bytes (headers included).
    rate_bps:
        Link rate in bits per second; must be positive.
    """
    if rate_bps <= 0:
        raise ConfigurationError(f"link rate must be positive, got {rate_bps!r}")
    return bytes_to_bits(nbytes) / float(rate_bps)


def bandwidth_delay_product_bytes(rate_bps: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes for a path of ``rate_bps`` and ``rtt_s``."""
    if rate_bps < 0 or rtt_s < 0:
        raise ConfigurationError("rate and RTT must be non-negative")
    return bits_to_bytes(rate_bps * rtt_s)


def bandwidth_delay_product_packets(
    rate_bps: float, rtt_s: float, packet_bytes: float = DEFAULT_SEGMENT_BYTES
) -> float:
    """Bandwidth-delay product expressed in packets of ``packet_bytes``."""
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    return bandwidth_delay_product_bytes(rate_bps, rtt_s) / float(packet_bytes)


def throughput_bps(nbytes: float, duration_s: float) -> float:
    """Average throughput in bits per second for ``nbytes`` over ``duration_s``."""
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive to compute throughput")
    return bytes_to_bits(nbytes) / duration_s


# ---------------------------------------------------------------------------
# human-readable formatting (for reports)
# ---------------------------------------------------------------------------

def format_rate(rate_bps: float) -> str:
    """Format a bit rate with an appropriate SI prefix (``'94.32 Mbit/s'``)."""
    rate = float(rate_bps)
    for factor, suffix in ((1e9, "Gbit/s"), (1e6, "Mbit/s"), (1e3, "kbit/s")):
        if abs(rate) >= factor:
            return f"{rate / factor:.2f} {suffix}"
    return f"{rate:.1f} bit/s"


def format_bytes(nbytes: float) -> str:
    """Format a byte count with an appropriate SI prefix (``'12.50 MB'``)."""
    size = float(nbytes)
    for factor, suffix in ((1e9, "GB"), (1e6, "MB"), (1e3, "kB")):
        if abs(size) >= factor:
            return f"{size / factor:.2f} {suffix}"
    return f"{size:.0f} B"


def format_time(t_s: float) -> str:
    """Format a duration (``'60.0 ms'``, ``'12.00 s'``)."""
    t = float(t_s)
    if abs(t) >= 1.0:
        return f"{t:.2f} s"
    if abs(t) >= 1e-3:
        return f"{t * 1e3:.1f} ms"
    return f"{t * 1e6:.1f} us"
