"""Declarative scenario specifications: topology and workload as data.

The paper evaluates one shape — a single-flow dumbbell between Argonne and
Berkeley — and for a long time that shape was hardwired into the scenario
builders.  This module makes the scenario itself declarative: a
:class:`ScenarioSpec` is a frozen, JSON-round-trippable document composed of

* :class:`TopologySpec` — named nodes (hosts/routers) plus
  :class:`LinkSpec` edges declaring rate, delay, per-direction queue
  capacities and optional per-direction :class:`LossSpec` models;
* :class:`FlowSpec` — one bulk TCP transfer (src/dst node, algorithm,
  start time, transfer size, port);
* :class:`CrossTrafficSpec` — a UDP source (CBR/Poisson/on-off) between two
  named hosts;
* a :class:`~repro.workloads.scenarios.PathConfig` carrying the TCP/option
  parameters (MSS, receive window, ...) shared by every flow.

Specs follow the :mod:`repro.spec` conventions: strict unknown-field
rejection on ``from_dict``, a stable :meth:`~SpecBase.cache_key`, and
pickling for process fan-out.  :mod:`repro.workloads.compile` turns a
``ScenarioSpec`` into the live ``Topology``/``Scenario`` objects; the
factory functions here (:func:`dumbbell`, :func:`shared_path`,
:func:`parking_lot`, :func:`asymmetric_path`, :func:`lossy_link`) generate
the gallery of canonical shapes, with :func:`dumbbell` reproducing the
paper's testbed byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, NoReturn, Sequence

from ..errors import ExperimentError, UnsupportedScenarioError
from ..workloads.scenarios import DATA_PORT_BASE, PathConfig
from .specs import SpecBase, _checked, _construct, _decode_path_config

__all__ = [
    "NodeSpec",
    "LossSpec",
    "QueueSpec",
    "LinkSpec",
    "TopologySpec",
    "FlowSpec",
    "CrossTrafficSpec",
    "ScenarioSpec",
    "dumbbell",
    "shared_path",
    "parking_lot",
    "asymmetric_path",
    "lossy_link",
    "aqm_dumbbell",
    "l4s_dumbbell",
    "red_bottleneck",
    "from_bulk_flows",
    "SCENARIO_FACTORIES",
    "scenario_factory",
    "available_scenarios",
    "rebuild_canonical_scenario",
    "fluid_unsupported_features",
    "fluid_multiflow_unsupported_features",
    "ensure_fluid_scenario",
    "ensure_fluid_multiflow_scenario",
]

_ROLES = ("host", "router")

#: Loss-model kinds the spec layer can declare, mapped to their (required,
#: optional) parameter names (mirrors the :mod:`repro.net.lossmodels`
#: constructors).
LOSS_MODEL_PARAMS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "bernoulli": (("p",), ()),
    "gilbert_elliott": (("p_good_to_bad", "p_bad_to_good"),
                        ("loss_good", "loss_bad")),
    "deterministic": (("drop_indices",), ()),
}

_CROSS_TRAFFIC_KINDS = ("cbr", "poisson", "onoff")

#: Queue disciplines the spec layer can declare, mapped to their optional
#: parameter names (mirrors the :mod:`repro.net.queues` /
#: :mod:`repro.net.aqm` constructors; capacity and ECN capability are
#: first-class ``QueueSpec`` fields, not params).
QUEUE_DISCIPLINES: dict[str, tuple[str, ...]] = {
    "droptail": ("capacity_bytes",),
    "red": ("min_threshold", "max_threshold", "max_p", "weight",
            "mean_pkt_time"),
    "codel": ("target", "interval"),
    "dualpi2": ("target", "tupdate", "alpha", "beta", "coupling",
                "step_threshold", "ecn_classic"),
}


# ---------------------------------------------------------------------------
# topology building blocks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodeSpec:
    """One named node of the topology graph."""

    name: str
    role: str = "host"

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("node names must be non-empty")
        if self.role not in _ROLES:
            raise ExperimentError(
                f"unknown node role {self.role!r} for {self.name!r}; "
                f"choose one of {_ROLES}")


@dataclass(frozen=True)
class LossSpec:
    """Declarative description of a link loss model."""

    model: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in LOSS_MODEL_PARAMS:
            raise ExperimentError(
                f"unknown loss model {self.model!r}; known models: "
                f"{sorted(LOSS_MODEL_PARAMS)}")
        required, optional = LOSS_MODEL_PARAMS[self.model]
        unknown = sorted(set(self.params) - set(required) - set(optional))
        if unknown:
            raise ExperimentError(
                f"unknown {self.model} loss parameter(s) {unknown}; "
                f"known parameters: {sorted(required + optional)}")
        missing = sorted(set(required) - set(self.params))
        if missing:
            raise ExperimentError(
                f"{self.model} loss model is missing required "
                f"parameter(s) {missing}")


@dataclass(frozen=True)
class QueueSpec:
    """Declarative description of one direction's queue discipline.

    A plain ``int`` in :class:`LinkSpec` still means "drop-tail with that
    many packets" (keeping every legacy spec document and cache key
    byte-identical); a ``QueueSpec`` additionally selects an AQM discipline
    (``red``/``codel``/``dualpi2``), whether it CE-marks ECN-capable
    packets instead of dropping, and discipline parameters (see
    :data:`QUEUE_DISCIPLINES`; unset parameters take the compile-time
    defaults derived from the link).
    """

    discipline: str = "droptail"
    capacity_packets: int = 100
    ecn: bool = False
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.discipline not in QUEUE_DISCIPLINES:
            raise ExperimentError(
                f"unknown queue discipline {self.discipline!r}; known "
                f"disciplines: {sorted(QUEUE_DISCIPLINES)}")
        if self.capacity_packets <= 0:
            raise ExperimentError("queue capacity_packets must be positive")
        if self.ecn and self.discipline == "droptail":
            raise ExperimentError(
                "droptail queues cannot CE-mark; pick an AQM discipline "
                f"({sorted(set(QUEUE_DISCIPLINES) - {'droptail'})}) for ecn=True")
        known = QUEUE_DISCIPLINES[self.discipline]
        unknown = sorted(set(self.params) - set(known))
        if unknown:
            raise ExperimentError(
                f"unknown {self.discipline} queue parameter(s) {unknown}; "
                f"known parameters: {sorted(known)}")


def _queue_spec_of(value: "int | QueueSpec") -> QueueSpec:
    """Normalise a LinkSpec queue field to a :class:`QueueSpec`."""
    if isinstance(value, QueueSpec):
        return value
    return QueueSpec(capacity_packets=value)


@dataclass(frozen=True)
class LinkSpec:
    """One bidirectional edge of the topology graph.

    ``a``/``b`` name the endpoints; the *forward* direction is a→b.  Each
    direction gets its own queue — a plain ``int`` capacity (drop-tail) or
    a full :class:`QueueSpec` — and (optionally) its own loss model;
    ``rate_ba_bps`` declares an asymmetric reverse-direction line rate
    (``None`` mirrors the forward rate).
    """

    a: str
    b: str
    rate_bps: float
    delay_s: float
    rate_ba_bps: float | None = None
    queue_ab_packets: int | QueueSpec = 100
    queue_ba_packets: int | QueueSpec = 100
    loss_ab: LossSpec | None = None
    loss_ba: LossSpec | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        label = self.name or f"{self.a}--{self.b}"
        if self.a == self.b:
            raise ExperimentError(f"link {label!r} connects {self.a!r} to itself")
        if self.rate_bps <= 0:
            raise ExperimentError(f"link {label!r} rate must be positive")
        if self.rate_ba_bps is not None and self.rate_ba_bps <= 0:
            raise ExperimentError(f"link {label!r} reverse rate must be positive")
        if self.delay_s < 0:
            raise ExperimentError(f"link {label!r} delay must be >= 0")
        for queue in (self.queue_ab_packets, self.queue_ba_packets):
            # QueueSpec validates itself in its own __post_init__
            if not isinstance(queue, QueueSpec) and queue <= 0:
                raise ExperimentError(
                    f"link {label!r} queue capacities must be positive")

    @property
    def queue_ab(self) -> QueueSpec:
        """The a→b queue as a normalised :class:`QueueSpec`."""
        return _queue_spec_of(self.queue_ab_packets)

    @property
    def queue_ba(self) -> QueueSpec:
        """The b→a queue as a normalised :class:`QueueSpec`."""
        return _queue_spec_of(self.queue_ba_packets)


@dataclass(frozen=True)
class TopologySpec:
    """Named nodes plus the links connecting them."""

    nodes: tuple[NodeSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()
    #: ``None`` routes on hop count; ``"delay"`` minimises propagation delay.
    routing_weight: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "links", tuple(self.links))
        if self.routing_weight not in (None, "delay"):
            raise ExperimentError(
                f"unknown routing weight {self.routing_weight!r}; "
                "use None (hop count) or 'delay'")
        seen: set[str] = set()
        for node in self.nodes:
            if node.name in seen:
                raise ExperimentError(f"duplicate node name {node.name!r}")
            seen.add(node.name)
        for link in self.links:
            for endpoint in (link.a, link.b):
                if endpoint not in seen:
                    raise ExperimentError(
                        f"link {link.name or f'{link.a}--{link.b}'!r} references "
                        f"undeclared node {endpoint!r}")

    # -- queries ---------------------------------------------------------
    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ExperimentError(f"unknown node {name!r}")

    @property
    def host_names(self) -> tuple[str, ...]:
        return tuple(n.name for n in self.nodes if n.role == "host")

    @property
    def router_names(self) -> tuple[str, ...]:
        return tuple(n.name for n in self.nodes if n.role == "router")


# ---------------------------------------------------------------------------
# workload building blocks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FlowSpec:
    """One bulk TCP transfer between two named hosts.

    ``duration`` limits how long the flow *offers* data: the sender stops
    writing at ``start_time + duration`` (the :class:`BulkSenderApp` stop
    hook), in-flight data is still delivered, and the flow counts as
    completed at the final ACK.  ``None`` sends for the whole run.

    ``ecn=True`` makes both endpoints offer RFC 3168 ECN on the handshake;
    data packets then carry the algorithm's ECT codepoint and AQM CE marks
    echo back as ECE.  Encoded documents omit the field when ``False`` so
    legacy specs and cache keys are unchanged.
    """

    src: str
    dst: str
    cc: str = "reno"
    start_time: float = 0.0
    duration: float | None = None
    total_bytes: int | None = None
    port: int | None = None
    cc_kwargs: dict = field(default_factory=dict)
    ecn: bool = False

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ExperimentError(f"flow cannot loop {self.src!r} back to itself")
        if self.start_time < 0:
            raise ExperimentError("flow start_time must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ExperimentError("flow duration must be positive or None")
        if self.total_bytes is not None and self.total_bytes <= 0:
            raise ExperimentError("flow total_bytes must be positive or None")
        if self.port is not None and not (0 < self.port < 65536):
            raise ExperimentError(f"flow port {self.port!r} outside 1..65535")

    @property
    def stop_time(self) -> float | None:
        """Absolute stop time implied by ``duration`` (``None`` = never)."""
        if self.duration is None:
            return None
        return self.start_time + self.duration


@dataclass(frozen=True)
class CrossTrafficSpec:
    """A UDP cross-traffic source between two named hosts.

    ``rate_fraction`` is the offered load as a fraction of the scenario
    config's bottleneck rate (peak rate for the on/off source), matching
    :func:`repro.workloads.cross_traffic.add_cross_traffic`.
    """

    src: str
    dst: str
    kind: str = "cbr"
    rate_fraction: float = 0.2
    packet_bytes: int = 1500
    start_time: float = 0.0
    stop_time: float | None = None
    port: int | None = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ExperimentError("cross traffic cannot loop back to its source")
        if self.kind not in _CROSS_TRAFFIC_KINDS:
            raise ExperimentError(
                f"unknown cross-traffic kind {self.kind!r}; "
                f"choose from {_CROSS_TRAFFIC_KINDS}")
        if not (0.0 < self.rate_fraction <= 1.0):
            raise ExperimentError("cross-traffic rate_fraction must be in (0, 1]")
        if self.packet_bytes <= 0:
            raise ExperimentError("cross-traffic packet_bytes must be positive")
        if self.start_time < 0:
            raise ExperimentError("cross-traffic start_time must be >= 0")


# ---------------------------------------------------------------------------
# decoding helpers (strict, mirroring repro.spec.specs conventions)
# ---------------------------------------------------------------------------

def _decode_loss(data: dict | None) -> LossSpec | None:
    if data is None:
        return None
    return _construct(LossSpec, {**data, "params": dict(data.get("params") or {})})


def _decode_queue(value: "int | dict") -> "int | QueueSpec":
    if isinstance(value, dict):
        return _construct(QueueSpec,
                          {**value, "params": dict(value.get("params") or {})})
    return value


def _decode_link(data: dict) -> LinkSpec:
    decoded = {
        **data,
        "loss_ab": _decode_loss(data.get("loss_ab")),
        "loss_ba": _decode_loss(data.get("loss_ba")),
    }
    for key in ("queue_ab_packets", "queue_ba_packets"):
        if key in decoded:
            decoded[key] = _decode_queue(decoded[key])
    return _construct(LinkSpec, decoded)


def _decode_topology(data: dict | None) -> TopologySpec | None:
    if data is None:
        return None
    data = dict(data)
    nodes = tuple(_construct(NodeSpec, n) for n in data.pop("nodes", ()))
    links = tuple(_decode_link(l) for l in data.pop("links", ()))
    return _construct(TopologySpec, {**data, "nodes": nodes, "links": links})


def _decode_scenario_flow(data: dict) -> FlowSpec:
    return _construct(FlowSpec,
                      {**data, "cc_kwargs": dict(data.get("cc_kwargs") or {})})


def _decode_cross_traffic(data: dict) -> CrossTrafficSpec:
    return _construct(CrossTrafficSpec, data)


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec(SpecBase):
    """Topology plus workload, fully described by plain data.

    A scenario is the "where and what" of an experiment — the graph, the
    flows and the cross traffic; a :class:`~repro.spec.RunSpec` or
    :class:`~repro.spec.MultiFlowSpec` adds the "how" (duration, seed,
    backend).  Executing a bare ``ScenarioSpec`` through
    :func:`repro.spec.execute` wraps it in a default ``MultiFlowSpec``.

    ``config`` carries the TCP/option parameters (MSS, header size, receive
    window factor) shared by every flow; the factories also derive the
    topology's link rates and queue capacities from it, but a hand-written
    spec may declare any per-link values it likes.
    """

    kind = "scenario"

    name: str = "dumbbell"
    config: PathConfig = field(default_factory=PathConfig)
    topology: TopologySpec = None  # type: ignore[assignment]  # default derived from config
    flows: tuple[FlowSpec, ...] = None  # type: ignore[assignment]
    cross_traffic: tuple[CrossTrafficSpec, ...] = ()

    def __post_init__(self) -> None:
        # The canonical default is the paper's single-flow dumbbell on
        # whatever ``config`` was given.
        if self.topology is None:
            object.__setattr__(self, "topology", _dumbbell_topology(self.config, 1))
        if self.flows is None:
            object.__setattr__(self, "flows",
                               (FlowSpec(src="sender0", dst="receiver0"),))
        object.__setattr__(self, "flows", tuple(self.flows))
        object.__setattr__(self, "cross_traffic", tuple(self.cross_traffic))
        if not self.name:
            raise ExperimentError("scenario name must be non-empty")
        if not self.topology.nodes:
            raise ExperimentError("scenario topology declares no nodes")
        if not self.flows:
            raise ExperimentError("a scenario must declare at least one flow")
        hosts = set(self.topology.host_names)
        for flow in self.flows:
            for endpoint in (flow.src, flow.dst):
                if endpoint not in hosts:
                    raise ExperimentError(
                        f"flow endpoint {endpoint!r} is not a declared host "
                        f"(hosts: {sorted(hosts)})")
        # Effective ports: a flow without an explicit port gets
        # DATA_PORT_BASE + its index at compile time, so explicit ports
        # must not collide with those defaults either.
        effective_ports: dict[int, int] = {}
        for i, flow in enumerate(self.flows):
            port = flow.port if flow.port is not None else DATA_PORT_BASE + i
            if port in effective_ports:
                raise ExperimentError(
                    f"flow {i} port {port} collides with flow "
                    f"{effective_ports[port]}'s (flows without an explicit "
                    f"port default to {DATA_PORT_BASE} + index)")
            effective_ports[port] = i
        for xt in self.cross_traffic:
            for endpoint in (xt.src, xt.dst):
                if endpoint not in hosts:
                    raise ExperimentError(
                        f"cross-traffic endpoint {endpoint!r} is not a declared "
                        f"host (hosts: {sorted(hosts)})")

    # -- uniform overrides ----------------------------------------------
    @property
    def path_config(self) -> PathConfig:
        return self.config

    @property
    def backend(self) -> str:
        """Scenarios execute on the packet engine (canonical dumbbells may
        additionally run fluid through a ``RunSpec``)."""
        return "packet"

    def _no_override(self, what: str) -> "NoReturn":
        raise ExperimentError(
            f"a ScenarioSpec carries no {what}; wrap it in a RunSpec or "
            "MultiFlowSpec (or rebuild it through its factory) instead")

    def with_backend(self, backend: str) -> "ScenarioSpec":
        self._no_override("backend")

    def with_config(self, config: PathConfig) -> "ScenarioSpec":
        # The topology's link rates/queues were derived from the original
        # config; silently swapping the config would desynchronise them.
        self._no_override("overridable path config")

    def with_duration(self, duration: float) -> "ScenarioSpec":
        self._no_override("duration")

    def with_seed(self, seed: int) -> "ScenarioSpec":
        self._no_override("seed")

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        # flow "ecn": false is omitted so pre-ECN documents — and their
        # cache keys, which address every stored result — are unchanged
        data = super().to_dict()
        for flow in data.get("flows") or ():
            if flow.get("ecn") is False:
                del flow["ecn"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = _checked(cls, data)
        return cls(
            name=data.get("name", "dumbbell"),
            config=_decode_path_config(data.get("config")),
            topology=_decode_topology(data.get("topology")),
            flows=(tuple(_decode_scenario_flow(f) for f in data["flows"])
                   if data.get("flows") is not None else None),
            cross_traffic=tuple(_decode_cross_traffic(x)
                                for x in data.get("cross_traffic", ())),
        )


def decode_scenario(data: dict | None) -> ScenarioSpec | None:
    """Decode an optional nested scenario document (``None`` passes through)."""
    if data is None:
        return None
    return ScenarioSpec.from_dict(data)


# ---------------------------------------------------------------------------
# factories — the scenario gallery
# ---------------------------------------------------------------------------

def _access_link(cfg: PathConfig, host: str, router: str, *, sender: bool,
                 name: str) -> LinkSpec:
    """A host↔router access link following the dumbbell's queue conventions.

    Sender side: the forward (host→router) queue is the host IFQ whose
    saturation produces send-stalls, the reverse queue carries ACKs.
    Receiver side: the forward (router→host) queue is a router egress
    buffer, the reverse queue is the receiver NIC queue.
    """
    if sender:
        return LinkSpec(
            a=host, b=router,
            rate_bps=cfg.sender_nic_rate_bps, delay_s=cfg.access_delay,
            queue_ab_packets=cfg.ifq_capacity_packets,
            queue_ba_packets=cfg.ack_path_buffer_packets,
            name=name,
        )
    return LinkSpec(
        a=router, b=host,
        rate_bps=cfg.sender_nic_rate_bps, delay_s=cfg.access_delay,
        queue_ab_packets=cfg.router_buffer_packets,
        queue_ba_packets=cfg.receiver_ifq_capacity_packets,
        name=name,
    )


def _dumbbell_topology(cfg: PathConfig, n_pairs: int, *,
                       bottleneck_loss: LossSpec | None = None,
                       reverse_rate_bps: float | None = None) -> TopologySpec:
    """The N-pair dumbbell graph, declared in the legacy builder's order."""
    nodes = [NodeSpec("r1", "router"), NodeSpec("r2", "router")]
    links = [LinkSpec(
        a="r1", b="r2",
        rate_bps=cfg.bottleneck_rate_bps, delay_s=cfg.bottleneck_delay,
        rate_ba_bps=reverse_rate_bps,
        queue_ab_packets=cfg.router_buffer_packets,
        queue_ba_packets=cfg.router_buffer_packets,
        loss_ab=bottleneck_loss,
        name="bottleneck",
    )]
    for i in range(n_pairs):
        nodes.append(NodeSpec(f"sender{i}"))
        nodes.append(NodeSpec(f"receiver{i}"))
        links.append(_access_link(cfg, f"sender{i}", "r1", sender=True,
                                  name=f"access{i}"))
        links.append(_access_link(cfg, f"receiver{i}", "r2", sender=False,
                                  name=f"egress{i}"))
    return TopologySpec(nodes=tuple(nodes), links=tuple(links))


def _cc_list(ccs: str | Sequence[str], n_flows: int) -> list[str]:
    if isinstance(ccs, str):
        return [ccs] * n_flows
    ccs = list(ccs)
    if len(ccs) != n_flows:
        raise ExperimentError(
            f"got {len(ccs)} algorithms for {n_flows} flows; give one name "
            "or exactly one per flow")
    return ccs


def dumbbell(config: PathConfig | None = None, n_flows: int = 1, *,
             ccs: str | Sequence[str] = "reno",
             start_times: Sequence[float] | None = None,
             name: str = "dumbbell") -> ScenarioSpec:
    """N flows, each on its own sender/receiver pair, sharing one bottleneck.

    ``dumbbell(cfg, 1)`` is the paper's ANL–LBNL testbed — the canonical
    scenario every spec defaults to.
    """
    if n_flows < 1:
        raise ExperimentError("n_flows must be >= 1")
    cfg = config if config is not None else PathConfig()
    algos = _cc_list(ccs, n_flows)
    starts = list(start_times) if start_times is not None else [0.0] * n_flows
    if len(starts) != n_flows:
        raise ExperimentError("start_times must give one value per flow")
    flows = tuple(
        FlowSpec(src=f"sender{i}", dst=f"receiver{i}", cc=algos[i],
                 start_time=starts[i])
        for i in range(n_flows))
    return ScenarioSpec(name=name, config=cfg,
                        topology=_dumbbell_topology(cfg, n_flows), flows=flows)


def shared_path(config: PathConfig | None = None, n_flows: int = 2, *,
                ccs: str | Sequence[str] = "reno",
                start_times: Sequence[float] | None = None) -> ScenarioSpec:
    """N flows on ONE sender/receiver pair: they share the sender's IFQ too.

    This is the contention the paper's introduction describes — several
    components of one host saturating the same soft interface queue.
    """
    if n_flows < 1:
        raise ExperimentError("n_flows must be >= 1")
    cfg = config if config is not None else PathConfig()
    algos = _cc_list(ccs, n_flows)
    starts = list(start_times) if start_times is not None else [0.0] * n_flows
    if len(starts) != n_flows:
        raise ExperimentError("start_times must give one value per flow")
    flows = tuple(
        FlowSpec(src="sender0", dst="receiver0", cc=algos[i],
                 start_time=starts[i])
        for i in range(n_flows))
    return ScenarioSpec(name="shared_path", config=cfg,
                        topology=_dumbbell_topology(cfg, 1), flows=flows)


def parking_lot(config: PathConfig | None = None, n_bottlenecks: int = 3, *,
                long_cc: str = "reno",
                cross_ccs: str | Sequence[str] = "reno") -> ScenarioSpec:
    """The classic multi-bottleneck parking lot.

    ``n_bottlenecks`` router-to-router links in a chain; one *long* flow
    (``src0`` → ``dst0``) crosses every bottleneck while per-hop *cross*
    flows (``src{i}`` → ``dst{i}``) each cross exactly one.  The total
    propagation delay of the long path matches ``config.rtt``.
    """
    if n_bottlenecks < 2:
        raise ExperimentError("a parking lot needs at least 2 bottlenecks")
    cfg = config if config is not None else PathConfig()
    crossers = _cc_list(cross_ccs, n_bottlenecks)
    hop_delay = cfg.bottleneck_delay / n_bottlenecks

    nodes = [NodeSpec(f"r{i}", "router") for i in range(n_bottlenecks + 1)]
    links = [
        LinkSpec(a=f"r{i}", b=f"r{i + 1}",
                 rate_bps=cfg.bottleneck_rate_bps, delay_s=hop_delay,
                 queue_ab_packets=cfg.router_buffer_packets,
                 queue_ba_packets=cfg.router_buffer_packets,
                 name=f"bottleneck{i}")
        for i in range(n_bottlenecks)
    ]
    # long flow's endpoints span the whole chain
    nodes += [NodeSpec("src0"), NodeSpec("dst0")]
    links.append(_access_link(cfg, "src0", "r0", sender=True, name="access0"))
    links.append(_access_link(cfg, "dst0", f"r{n_bottlenecks}", sender=False,
                              name="egress0"))
    flows = [FlowSpec(src="src0", dst="dst0", cc=long_cc)]
    # one cross flow per bottleneck, entering just before it and leaving
    # just after it
    for i in range(1, n_bottlenecks + 1):
        nodes += [NodeSpec(f"src{i}"), NodeSpec(f"dst{i}")]
        links.append(_access_link(cfg, f"src{i}", f"r{i - 1}", sender=True,
                                  name=f"access{i}"))
        links.append(_access_link(cfg, f"dst{i}", f"r{i}", sender=False,
                                  name=f"egress{i}"))
        flows.append(FlowSpec(src=f"src{i}", dst=f"dst{i}", cc=crossers[i - 1],
                              start_time=0.05 * i))
    return ScenarioSpec(name="parking_lot", config=cfg,
                        topology=TopologySpec(nodes=tuple(nodes),
                                              links=tuple(links)),
                        flows=tuple(flows))


def asymmetric_path(config: PathConfig | None = None, *,
                    reverse_rate_fraction: float = 0.1,
                    cc: str = "reno") -> ScenarioSpec:
    """A dumbbell whose reverse (ACK) bottleneck direction is slower.

    Models asymmetric access technology: the ACK stream shares a link with
    ``reverse_rate_fraction`` of the forward rate, so ACK compression and
    reverse-path queueing feed back into the sender's clocking.
    """
    if not (0.0 < reverse_rate_fraction <= 1.0):
        raise ExperimentError("reverse_rate_fraction must be in (0, 1]")
    cfg = config if config is not None else PathConfig()
    topo = _dumbbell_topology(
        cfg, 1, reverse_rate_bps=reverse_rate_fraction * cfg.bottleneck_rate_bps)
    return ScenarioSpec(name="asymmetric_path", config=cfg, topology=topo,
                        flows=(FlowSpec(src="sender0", dst="receiver0", cc=cc),))


def lossy_link(config: PathConfig | None = None, *, loss: float = 1e-3,
               model: str = "bernoulli", params: dict | None = None,
               n_flows: int = 1,
               ccs: str | Sequence[str] = "reno") -> ScenarioSpec:
    """A dumbbell whose bottleneck corrupts packets (non-congestion loss).

    ``model="bernoulli"`` drops each forward packet with probability
    ``loss``; pass ``model``/``params`` explicitly for bursty
    (``gilbert_elliott``) or scripted (``deterministic``) loss.
    """
    cfg = config if config is not None else PathConfig()
    if params is None:
        if model != "bernoulli":
            raise ExperimentError(
                f"loss model {model!r} needs explicit params=")
        params = {"p": loss}
    loss_spec = LossSpec(model=model, params=params)
    algos = _cc_list(ccs, n_flows)
    topo = _dumbbell_topology(cfg, n_flows, bottleneck_loss=loss_spec)
    flows = tuple(FlowSpec(src=f"sender{i}", dst=f"receiver{i}", cc=algos[i])
                  for i in range(n_flows))
    return ScenarioSpec(name="lossy_link", config=cfg, topology=topo,
                        flows=flows)


#: Receive-window cap (in bandwidth-delay products) for AQM scenarios.
_AQM_RWND_FACTOR = 1.25


def _aqm_config(config: PathConfig | None) -> PathConfig:
    """Config for the AQM gallery: congestion must hit the *bottleneck*.

    The paper's testbed has NIC rate == bottleneck rate, so its congestion
    forms at the sender IFQ and the router queue barely fills — an AQM
    there would have nothing to do.  Unless the caller pinned an access
    rate, raise it to 4x the bottleneck so the router queue is the
    contended resource.

    The receive window is also capped at 1.25x the BDP (the default is
    4x): the modelled 2.4-era NewReno has no SACK and repairs one loss per
    round trip, so an uncapped slow start that overshoots the router
    buffer by a full window loses hundreds of segments and spends tens of
    seconds in a single recovery episode — every cell would measure that
    crawl instead of the queue discipline under test.
    """
    cfg = config if config is not None else PathConfig()
    if cfg.access_rate_bps is None:
        cfg = replace(cfg, access_rate_bps=4.0 * cfg.bottleneck_rate_bps)
    if cfg.rwnd_factor > _AQM_RWND_FACTOR:
        cfg = replace(cfg, rwnd_factor=_AQM_RWND_FACTOR)
    return cfg


def _with_bottleneck_queue(topo: TopologySpec, queue: QueueSpec) -> TopologySpec:
    """The same topology with both bottleneck directions using ``queue``."""
    links = tuple(
        replace(link, queue_ab_packets=queue, queue_ba_packets=queue)
        if link.name == "bottleneck" else link
        for link in topo.links)
    return replace(topo, links=links)


def aqm_dumbbell(config: PathConfig | None = None, n_flows: int = 1, *,
                 discipline: str = "red",
                 queue_params: dict | None = None,
                 ecn: bool = False,
                 ccs: str | Sequence[str] = "reno",
                 start_times: Sequence[float] | None = None,
                 name: str | None = None) -> ScenarioSpec:
    """A dumbbell whose bottleneck runs an AQM discipline.

    The general factory behind :func:`l4s_dumbbell` and
    :func:`red_bottleneck` (and the E13 gallery sweep): both bottleneck
    directions get a :class:`QueueSpec` with the declared ``discipline``,
    and ``ecn=True`` additionally makes the queue CE-mark and every flow
    negotiate ECN.  ``discipline="droptail"`` gives the plain baseline.
    """
    cfg = _aqm_config(config)
    base = dumbbell(cfg, n_flows, ccs=ccs, start_times=start_times)
    if discipline == "droptail" and not ecn:
        topo, flows = base.topology, base.flows
    else:
        queue = QueueSpec(discipline=discipline,
                          capacity_packets=cfg.router_buffer_packets,
                          ecn=ecn, params=dict(queue_params or {}))
        topo = _with_bottleneck_queue(base.topology, queue)
        flows = tuple(replace(f, ecn=ecn) for f in base.flows)
    return ScenarioSpec(name=name or f"aqm_{discipline}", config=cfg,
                        topology=topo, flows=flows)


def l4s_dumbbell(config: PathConfig | None = None, n_flows: int = 1, *,
                 ccs: str | Sequence[str] = "prague",
                 start_times: Sequence[float] | None = None) -> ScenarioSpec:
    """An L4S dumbbell: DualPI2 marking bottleneck, ECN Prague flows.

    The headline AQM scenario — scalable marking keeps the standing queue
    near the DualPI2 target, so Prague sees a steady CE-mark signal and
    (near-)zero bottleneck drops where a drop-tail baseline drops bursts.
    """
    return aqm_dumbbell(config, n_flows, discipline="dualpi2", ecn=True,
                        ccs=ccs, start_times=start_times,
                        name="l4s_dumbbell")


def red_bottleneck(config: PathConfig | None = None, n_flows: int = 1, *,
                   ecn: bool = False,
                   ccs: str | Sequence[str] = "reno",
                   start_times: Sequence[float] | None = None) -> ScenarioSpec:
    """A dumbbell with a classic RED bottleneck (optionally ECN-marking)."""
    return aqm_dumbbell(config, n_flows, discipline="red", ecn=ecn,
                        ccs=ccs, start_times=start_times,
                        name="red_bottleneck")


def from_bulk_flows(specs: Sequence, config: PathConfig | None = None,
                    shared_paths: bool = False) -> ScenarioSpec:
    """The scenario equivalent of the legacy ``run_multi_flow`` arguments.

    ``specs`` are :class:`~repro.workloads.bulk.BulkFlowSpec` objects;
    ``shared_paths=True`` maps every flow onto one sender/receiver pair
    (sharing the sending host's IFQ), otherwise flow ``i`` gets pair ``i``
    (or its explicit ``path_index``).
    """
    if not specs:
        raise ExperimentError("at least one flow spec is required")
    cfg = config if config is not None else PathConfig()
    n_pairs = 1 if shared_paths else len(specs)
    flows = []
    for i, spec in enumerate(specs):
        if shared_paths:
            pair = 0
        else:
            pair = spec.path_index if spec.path_index is not None else i
        if not (0 <= pair < n_pairs):
            raise ExperimentError(
                f"flow {i} path_index {pair} out of range (0..{n_pairs - 1})")
        flows.append(FlowSpec(src=f"sender{pair}", dst=f"receiver{pair}",
                              cc=spec.cc, start_time=spec.start_time,
                              total_bytes=spec.total_bytes,
                              cc_kwargs=dict(spec.cc_kwargs)))
    topo = _dumbbell_topology(cfg, n_pairs)
    return ScenarioSpec(name="shared_path" if shared_paths else "dumbbell",
                        config=cfg, topology=topo, flows=tuple(flows))


#: The scenario gallery: name → zero-configuration factory (all accept
#: ``config=`` plus shape keywords; see each factory's docstring).
SCENARIO_FACTORIES: dict[str, Callable[..., ScenarioSpec]] = {
    "dumbbell": dumbbell,
    "shared_path": shared_path,
    "parking_lot": parking_lot,
    "asymmetric_path": asymmetric_path,
    "lossy_link": lossy_link,
    "aqm_dumbbell": aqm_dumbbell,
    "l4s_dumbbell": l4s_dumbbell,
    "red_bottleneck": red_bottleneck,
}


def available_scenarios() -> list[str]:
    """Names in the scenario gallery, sorted."""
    return sorted(SCENARIO_FACTORIES)


def scenario_factory(name: str) -> Callable[..., ScenarioSpec]:
    """Look up a gallery factory by name."""
    try:
        return SCENARIO_FACTORIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{available_scenarios()}") from None


# ---------------------------------------------------------------------------
# fluid-backend shape validation
# ---------------------------------------------------------------------------

def _dumbbell_pair_index(flow: FlowSpec) -> int | None:
    """Pair index ``k`` if the flow runs on a canonical senderK→receiverK pair."""
    src, dst = flow.src, flow.dst
    if src.startswith("sender") and dst.startswith("receiver"):
        i, j = src[len("sender"):], dst[len("receiver"):]
        if i == j and i.isdigit():
            return int(i)
    return None


def _fluid_shape_features(spec: ScenarioSpec, n_pairs: int, *,
                          check_canonical: bool = True) -> list[str]:
    """Topology/workload features outside the canonical N-pair dumbbell.

    The shape is *derived from the gallery factory itself*: after the
    feature-by-feature checks (which produce precise messages for the
    gallery's asymmetric/lossy variants), the declared topology must equal
    ``_dumbbell_topology(config, n_pairs)`` byte-for-byte — exactly what
    :func:`dumbbell`/:func:`shared_path` would have generated — so any
    hand-written deviation (re-sized queues, extra links, off-rate access
    links) is rejected rather than silently run through the symmetric
    no-loss arithmetic.
    """
    features: list[str] = []
    topo = spec.topology
    if spec.cross_traffic:
        features.append("cross traffic")
    n_routers = len(topo.router_names)
    if n_routers != 2:
        features.append(
            f"{n_routers} routers (only the 2-router dumbbell is modelled)")
    if any(link.loss_ab or link.loss_ba for link in topo.links):
        features.append("per-link loss models")
    disciplines = sorted({
        queue.discipline
        for link in topo.links
        for queue in (link.queue_ab_packets, link.queue_ba_packets)
        if isinstance(queue, QueueSpec)})
    if disciplines:
        features.append(
            "AQM queue disciplines (declarative QueueSpec queues: "
            + ", ".join(disciplines) + ")")
    if any(flow.ecn for flow in spec.flows):
        features.append("ECN-enabled flows")
    if any(link.rate_ba_bps is not None for link in topo.links):
        features.append("asymmetric link rates")
    if topo.routing_weight is not None:
        features.append("delay-weighted routing")
    # the byte-for-byte factory comparison only carries information when no
    # named feature already explains the rejection — and callers whose own
    # checks fired (e.g. a flow-count mismatch) suppress it outright, since
    # "differs from the canonical N-pair dumbbell" would be judged against
    # the wrong N and mislead
    if check_canonical and not features \
            and topo != _dumbbell_topology(spec.config, n_pairs):
        features.append(
            f"a topology that differs from the canonical {n_pairs}-pair "
            "dumbbell for its config")
    return features


def fluid_unsupported_features(spec: ScenarioSpec) -> list[str]:
    """Which declared features the *single-flow* fluid model cannot represent.

    The single-flow fluid backend (``RunSpec(backend="fluid")``) models
    exactly the canonical single-flow dumbbell (sender IFQ → one bottleneck
    → receiver) parameterised by the scenario's ``config``; the declared
    flow's ``start_time`` (delayed app launch) and ``duration`` stop are
    honoured.  Returns an empty list when the scenario is fluid-expressible.
    Multi-flow dumbbells are checked by
    :func:`fluid_multiflow_unsupported_features` instead.
    """
    features: list[str] = []
    if len(spec.flows) != 1:
        features.append(f"{len(spec.flows)} flows (the single-flow model; "
                        "run it through MultiFlowSpec(backend='fluid'))")
    features.extend(_fluid_shape_features(spec, 1,
                                          check_canonical=not features))
    return features


def fluid_multiflow_unsupported_features(spec: ScenarioSpec) -> list[str]:
    """Which declared features the *N-flow* coupled fluid model cannot run.

    The multi-flow model covers every flow mix on the canonical N-pair
    dumbbell — including :func:`shared_path` (all flows on one pair, sharing
    the sender IFQ), staggered ``start_time`` values, per-flow ``duration``
    stops and finite ``total_bytes`` — coupled through a proportional
    ACK-clock share of the bottleneck.  Everything else (multi-bottleneck
    graphs, loss models, asymmetric rates, cross traffic, non-canonical
    link parameters, algorithms without a fluid growth rule) is named here.
    """
    from ..fluid.model import FLUID_ALGORITHMS

    features: list[str] = []
    pair_indices: list[int] = []
    unsupported_ccs: set[str] = set()
    for i, flow in enumerate(spec.flows):
        pair = _dumbbell_pair_index(flow)
        if pair is None:
            features.append(
                f"flow {i} ({flow.src}->{flow.dst}) off the canonical "
                "sender<k>->receiver<k> pairs")
        else:
            pair_indices.append(pair)
        if flow.cc not in FLUID_ALGORITHMS:
            unsupported_ccs.add(flow.cc)
    for cc in sorted(unsupported_ccs):
        features.append(
            f"algorithm {cc!r} (fluid growth rules: {sorted(FLUID_ALGORITHMS)})")
    if not features:
        features.extend(_fluid_shape_features(spec, max(pair_indices) + 1))
    return features


def rebuild_canonical_scenario(spec: ScenarioSpec,
                               config: PathConfig) -> ScenarioSpec | None:
    """Rebuild a canonical N-pair dumbbell scenario on a new path config.

    A dumbbell/shared-path scenario's topology is a pure function of its
    config (it is exactly what :func:`_dumbbell_topology` generates), so —
    unlike arbitrary hand-written graphs — it can be re-derived for a new
    config without desynchronising link rates and queue capacities from
    the TCP options.  Returns ``None`` when the scenario is not canonical
    (cross traffic, off-pair flows, or a non-factory topology); callers
    then fall back to rejecting the override.
    """
    pairs = [_dumbbell_pair_index(flow) for flow in spec.flows]
    if any(pair is None for pair in pairs):
        return None
    n_pairs = max(pairs) + 1
    if spec.cross_traffic or spec.topology != _dumbbell_topology(spec.config, n_pairs):
        return None
    return ScenarioSpec(name=spec.name, config=config,
                        topology=_dumbbell_topology(config, n_pairs),
                        flows=spec.flows)


def ensure_fluid_scenario(spec: ScenarioSpec) -> None:
    """Raise :class:`UnsupportedScenarioError` unless single-flow fluid can run ``spec``."""
    features = fluid_unsupported_features(spec)
    if features:
        raise UnsupportedScenarioError(
            f"the fluid backend models only the canonical single-flow "
            f"dumbbell; scenario {spec.name!r} declares " + "; ".join(features)
            + " — run it on the packet backend instead")


def ensure_fluid_multiflow_scenario(spec: ScenarioSpec) -> None:
    """Raise :class:`UnsupportedScenarioError` unless multi-flow fluid can run ``spec``."""
    features = fluid_multiflow_unsupported_features(spec)
    if features:
        raise UnsupportedScenarioError(
            f"the multi-flow fluid backend models only flow mixes on the "
            f"canonical N-pair dumbbell; scenario {spec.name!r} declares "
            + "; ".join(features) + " — run it on the packet backend instead")
