"""Limited Slow-Start (RFC 3742).

A published alternative to the paper's proposal that attacks the same
symptom (huge slow-start bursts on large-BDP paths) without sensing the host
IFQ: once the congestion window exceeds ``max_ssthresh`` the per-ACK growth
is throttled so the window grows by at most ``max_ssthresh / 2`` segments per
RTT.  Used as a comparison baseline in experiment E8.

For ``cwnd <= max_ssthresh`` the growth is standard slow-start.  Above it,
RFC 3742 prescribes::

    K = int(cwnd / (0.5 * max_ssthresh))
    cwnd += int(MSS / K)   per arriving ACK     (i.e. += 1/K segments)
"""

from __future__ import annotations

from ...errors import ConfigurationError
from .base import CCContext
from .reno import RenoCC

__all__ = ["LimitedSlowStartCC"]


class LimitedSlowStartCC(RenoCC):
    """RFC 3742 limited slow-start on top of Reno congestion avoidance."""

    name = "limited_slow_start"

    def __init__(self, ctx: CCContext, max_ssthresh_segments: float = 100.0) -> None:
        if max_ssthresh_segments <= 0:
            raise ConfigurationError("max_ssthresh_segments must be positive")
        super().__init__(ctx)
        self.max_ssthresh = float(max_ssthresh_segments)

    def _slow_start(self, acked_segments: float) -> None:
        if self.cwnd <= self.max_ssthresh:
            super()._slow_start(acked_segments)
            return
        # throttled region: += 1/K segments per acked segment
        k = max(int(self.cwnd / (0.5 * self.max_ssthresh)), 1)
        grown = self.cwnd + acked_segments / k
        if grown > self.ssthresh:
            overshoot = grown - self.ssthresh
            self.cwnd = self.ssthresh
            self._congestion_avoidance(overshoot)
        else:
            self.cwnd = grown
