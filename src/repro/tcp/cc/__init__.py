"""Pluggable congestion-control algorithms."""

from .base import CCContext, CongestionControl
from .cubic import CubicCC
from .hystart import HyStartCC
from .limited_slow_start import LimitedSlowStartCC
from .newreno import NewRenoCC
from .prague import PragueCC
from .registry import available_algorithms, cc_factory, create_cc, register_cc
from .reno import RenoCC

__all__ = [
    "CCContext",
    "CongestionControl",
    "RenoCC",
    "NewRenoCC",
    "LimitedSlowStartCC",
    "HyStartCC",
    "CubicCC",
    "PragueCC",
    "register_cc",
    "create_cc",
    "cc_factory",
    "available_algorithms",
]
