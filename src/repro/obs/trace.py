"""Engine-wide structured trace bus.

:class:`repro.sim.tracing.TraceRecorder` started life as a test aid: a
per-simulator list of ``(time, category, message, fields)`` records.  This
module promotes it to a run-wide *bus* that every execution path — the
packet engine, both fluid engines, queues/AQM, and the TCP stack — can
emit onto, with:

* **typed categories** — :data:`TRACE_CATEGORIES` names every category an
  engine emits together with a one-line contract (the README table is
  generated from the same source of truth);
* **bounded memory** — the in-memory buffer holds at most
  ``buffer_limit`` records; with a ``spill_path`` the buffer is appended
  to a JSONL file and cleared whenever it fills, so multi-million-event
  runs trace in O(buffer) memory;
* **a process-wide session** — :func:`trace_session` installs a bus that
  :class:`repro.sim.Simulator` and the fluid engines pick up without any
  signature changes (:func:`active_trace_bus`), which is how
  ``repro run --trace`` reaches code deep inside a backend.

The zero-cost-when-off contract: components either hold ``trace = None``
and guard emits with one ``is not None`` check (queues), or call
``sim.trace.record(...)`` where the disabled recorder returns after a
single ``enabled`` check.  ``benchmarks/bench_telemetry_overhead.py``
gates this in CI.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
from typing import IO, Any, Iterable, Iterator

from ..sim.tracing import TraceRecord, TraceRecorder

__all__ = [
    "TRACE_CATEGORIES",
    "TraceBus",
    "trace_session",
    "active_trace_bus",
    "write_jsonl",
    "read_jsonl",
]

#: Every category the engines emit, with its contract.  Keep this table in
#: sync with the README "Observability" section (the docs quote it).
TRACE_CATEGORIES: dict[str, str] = {
    "queue": "packet queue accounting: enqueue / dequeue / drop / mark (all disciplines)",
    "aqm": "AQM control law: CoDel drop-state transitions, DualPI2 probability updates",
    "ecn": "ECN plane: ECE echo reaching a sender's congestion response",
    "rto": "retransmission timeouts firing on established connections",
    "cc": "congestion-control state-machine transitions (open/disorder/cwr/recovery/loss)",
    "tcp": "legacy per-connection events: send stalls, connection teardown",
    "link": "link-level events: packets lost in flight on a lossy link",
    "sim": "TCP stack demux anomalies: segments dropped with no matching connection",
    "fluid": "scalar fluid engines: one record per simulated RTT round",
    "vector": "vector population engine: churn fold flushes (departed-flow batches)",
}

_DEFAULT_BUFFER_LIMIT = 65536


class TraceBus(TraceRecorder):
    """A :class:`TraceRecorder` with bounded memory and JSONL spill.

    Parameters
    ----------
    categories:
        Optional whitelist of category names (see :data:`TRACE_CATEGORIES`).
    spill_path:
        When given, the in-memory buffer is appended to this JSONL file and
        cleared every time it reaches ``buffer_limit`` records (and on
        :meth:`close`), keeping memory bounded on long runs.  Without it the
        bus behaves like a plain recorder honouring ``max_records``.
    buffer_limit:
        In-memory buffer size before a spill (default 65536 records).
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Iterable[str] | None = None,
        max_records: int | None = None,
        spill_path: str | pathlib.Path | None = None,
        buffer_limit: int = _DEFAULT_BUFFER_LIMIT,
    ) -> None:
        super().__init__(enabled=enabled, categories=categories,
                         max_records=max_records)
        self.spill_path = pathlib.Path(spill_path) if spill_path is not None else None
        self.buffer_limit = max(1, int(buffer_limit))
        self.total_records = 0
        self.spilled_records = 0
        self.category_counts: dict[str, int] = {}
        self._sink: IO[str] | None = None

    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        message: str,
        time: float | None = None,
        **fields: Any,
    ) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if (self.spill_path is None and self.max_records is not None
                and len(self.records) >= self.max_records):
            self.overflowed = True
            return
        if time is None:
            time = self._clock.now if self._clock is not None else 0.0
        self.records.append(TraceRecord(time, category, message, fields))
        self.total_records += 1
        self.category_counts[category] = self.category_counts.get(category, 0) + 1
        if self.spill_path is not None and len(self.records) >= self.buffer_limit:
            self.spill()

    # ------------------------------------------------------------------
    def spill(self) -> int:
        """Append the in-memory buffer to ``spill_path`` and clear it.

        Returns the number of records written.  A no-op (returning 0) when
        no ``spill_path`` is configured.
        """
        if self.spill_path is None or not self.records:
            return 0
        if self._sink is None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self.spill_path.open("a")
        written = len(self.records)
        for rec in self.records:
            self._sink.write(json.dumps(rec.as_dict()) + "\n")
        self._sink.flush()
        self.spilled_records += written
        self.records.clear()
        return written

    def close(self) -> None:
        """Flush any buffered records to the spill file and close it."""
        self.spill()
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "TraceBus":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str | pathlib.Path) -> int:
        """Write the in-memory records to ``path`` as JSONL; returns count."""
        return write_jsonl(self.records, path)

    def summary(self) -> dict[str, Any]:
        """Record counts by category, plus spill totals — for CLI reporting."""
        return {
            "total_records": self.total_records,
            "spilled_records": self.spilled_records,
            "buffered_records": len(self.records),
            "categories": dict(sorted(self.category_counts.items())),
        }


# ----------------------------------------------------------------------
# JSONL round-trip helpers
# ----------------------------------------------------------------------
def write_jsonl(records: Iterable[TraceRecord], path: str | pathlib.Path) -> int:
    """Write trace records to ``path``, one JSON object per line."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as sink:
        for rec in records:
            sink.write(json.dumps(rec.as_dict()) + "\n")
            count += 1
    return count


def read_jsonl(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into a list of flat dictionaries.

    Every line must be a JSON object carrying at least ``time``,
    ``category`` and ``message`` (the :meth:`TraceRecord.as_dict` shape);
    anything else raises ``ValueError`` so CI smoke checks fail loudly.
    """
    out: list[dict[str, Any]] = []
    with pathlib.Path(path).open() as source:
        for lineno, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if not isinstance(entry, dict):
                raise ValueError(f"{path}:{lineno}: trace line is not an object")
            missing = {"time", "category", "message"} - entry.keys()
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: trace line missing {sorted(missing)}")
            out.append(entry)
    return out


# ----------------------------------------------------------------------
# process-wide trace session
# ----------------------------------------------------------------------
_ACTIVE_BUS: TraceBus | None = None


def active_trace_bus() -> TraceBus | None:
    """The trace bus installed by :func:`trace_session`, if any.

    :class:`repro.sim.Simulator` consults this when constructed without an
    explicit recorder, and the fluid engines consult it at the top of each
    run — that is how ``repro run --trace`` reaches engines created deep
    inside a backend without threading a parameter through every layer.
    """
    return _ACTIVE_BUS


@contextlib.contextmanager
def trace_session(bus: TraceBus) -> Iterator[TraceBus]:
    """Install ``bus`` as the process-wide trace bus for the duration.

    Sessions nest: the previous bus (usually ``None``) is restored on
    exit, even on error.  Note the session is *per process* — it does not
    propagate into ``ProcessPoolExecutor`` workers, which is why the CLI
    forces serial execution while ``--trace`` is active.
    """
    global _ACTIVE_BUS
    previous = _ACTIVE_BUS
    _ACTIVE_BUS = bus
    try:
        yield bus
    finally:
        _ACTIVE_BUS = previous
