"""Experiment runner.

The harness every experiment and benchmark in this repository is built on.
Since the spec redesign the unit of work is a declarative, serializable
spec (:mod:`repro.spec`): :class:`~repro.spec.RunSpec` describes one bulk
transfer, and :func:`repro.spec.execute` dispatches it through the backend
registry (``packet`` — the event-driven ground truth implemented here by
:func:`execute_packet_run` — or ``fluid``, the per-RTT fast path).

The historical keyword signatures remain as thin deprecated wrappers that
construct specs:

* :func:`run_single_flow` — one bulk transfer, returning goodput, Web100
  counters, and the IFQ / cwnd / goodput time series needed for the figures;
* :func:`run_comparison` — the same workload under several algorithms with
  identical seeds (paired comparison, as in the paper's Section 4);
* :func:`run_multi_flow` — N concurrent flows sharing the bottleneck, for
  the fairness experiments.

See the README's "Spec API" section for the migration table and the
deprecation policy for these wrappers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.metrics import improvement_percent, jain_fairness_index, utilization
from ..core.config import RestrictedSlowStartConfig
from ..core.restricted_slow_start import RestrictedSlowStart
from ..host.apps import BulkSenderApp
from ..host.ifq import IFQMonitor
from ..instrumentation.tracer import TimeSeriesTracer
from ..metrics import FlowRecord, PopulationSummary, SummaryAccumulator
from ..obs import telemetry as obs
from ..sim.engine import Simulator
from ..spec import ComparisonSpec, MultiFlowSpec, RunSpec, execute
from ..tcp.state import LocalCongestionPolicy
from ..workloads.bulk import BulkFlowSpec
from ..workloads.scenarios import PathConfig, Scenario, build_dumbbell

__all__ = [
    "FlowResult",
    "SingleFlowResult",
    "MultiFlowResult",
    "ComparisonResult",
    "run_single_flow",
    "run_comparison",
    "run_multi_flow",
    "execute_packet_run",
    "execute_multi_flow_spec",
    "DEFAULT_PACKET_TRACE_INTERVAL",
]

#: Native trace sampling period of the packet engine (seconds); used when a
#: spec leaves ``trace_interval`` unset.
DEFAULT_PACKET_TRACE_INTERVAL = 0.05


# ---------------------------------------------------------------------------
# result containers
# ---------------------------------------------------------------------------

@dataclass
class FlowResult:
    """Per-flow outcome extracted from the Web100 counters."""

    name: str
    algorithm: str
    duration: float
    bytes_acked: int
    goodput_bps: float
    send_stalls: int
    stall_times: list[float]
    congestion_signals: int
    timeouts: int
    fast_retransmits: int
    pkts_retrans: int
    other_reductions: int
    max_cwnd_bytes: int
    final_cwnd_segments: float
    final_ssthresh_segments: float
    smoothed_rtt: float
    min_rtt: float
    completion_time: float | None
    #: Absolute sim time the transfer began (same clock as completion_time).
    start_time: float = 0.0
    web100: dict = field(default_factory=dict)

    @classmethod
    def from_app(cls, app: BulkSenderApp, algorithm: str, duration: float) -> "FlowResult":
        stats = app.stats
        cc = app.connection.cc
        return cls(
            name=app.name,
            algorithm=algorithm,
            duration=duration,
            start_time=app.start_time,
            bytes_acked=stats.ThruBytesAcked,
            goodput_bps=app.goodput_bps(),
            send_stalls=stats.SendStall,
            stall_times=stats.stall_times(),
            congestion_signals=stats.CongestionSignals,
            timeouts=stats.Timeouts,
            fast_retransmits=stats.FastRetran,
            pkts_retrans=stats.PktsRetrans,
            other_reductions=stats.OtherReductions,
            max_cwnd_bytes=stats.MaxCwnd,
            final_cwnd_segments=cc.cwnd,
            final_ssthresh_segments=cc.ssthresh,
            smoothed_rtt=stats.SmoothedRTT,
            min_rtt=stats.MinRTT if np.isfinite(stats.MinRTT) else 0.0,
            completion_time=app.completion_time,
            web100=stats.snapshot(),
        )


@dataclass
class SingleFlowResult:
    """Outcome of one single-flow run (flow metrics plus traces)."""

    config: PathConfig
    duration: float
    seed: int
    flow: FlowResult
    ifq_times: np.ndarray
    ifq_occupancy: np.ndarray
    ifq_peak: int
    ifq_drops: int
    bottleneck_drops: int
    cwnd_times: np.ndarray
    cwnd_segments: np.ndarray
    acked_times: np.ndarray
    acked_bytes: np.ndarray
    events_processed: int
    #: Which engine produced this result ("packet" or "fluid").
    backend: str = "packet"
    #: The declarative spec that produced this result (provenance; the
    #: basis for spec-keyed result caching).
    spec: RunSpec | None = None
    #: CE marks applied by the bottleneck queue (0 unless it runs an
    #: ECN-marking AQM).
    bottleneck_marks: int = 0

    @property
    def goodput_bps(self) -> float:
        return self.flow.goodput_bps

    @property
    def send_stalls(self) -> int:
        return self.flow.send_stalls

    @property
    def link_utilization(self) -> float:
        return utilization(self.flow.goodput_bps, self.config.bottleneck_rate_bps)


@dataclass
class ComparisonResult:
    """Paired single-flow runs of several algorithms (same seed and path)."""

    baseline: str
    runs: dict[str, SingleFlowResult]
    #: The declarative spec that produced this result (provenance).
    spec: ComparisonSpec | None = None

    def improvement_percent(self, algorithm: str) -> float:
        """Goodput improvement of ``algorithm`` over the baseline, percent."""
        base = self.runs[self.baseline].goodput_bps
        return improvement_percent(base, self.runs[algorithm].goodput_bps)

    def stall_counts(self) -> dict[str, int]:
        return {name: run.send_stalls for name, run in self.runs.items()}


@dataclass
class MultiFlowResult:
    """Outcome of one multi-flow run."""

    config: PathConfig
    duration: float
    seed: int
    flows: list[FlowResult]
    aggregate_goodput_bps: float
    jain_index: float
    link_utilization: float
    bottleneck_drops: int
    total_send_stalls: int
    #: Which engine produced this result ("packet" or "fluid").
    backend: str = "packet"
    #: The declarative spec that produced this result (provenance).
    spec: MultiFlowSpec | None = None
    #: CE marks applied by the bottleneck queue (0 unless it runs an
    #: ECN-marking AQM).
    bottleneck_marks: int = 0
    #: Canonical per-flow records (departure order, incompletes last).
    #: Under streamed churn this holds declared flows only — churned flows
    #: exist solely inside ``summary``.
    records: list[FlowRecord] = field(default_factory=list)
    #: Population statistics over *all* flows, streamed or not.
    summary: PopulationSummary | None = None


def _population_outcomes(
    flows: Sequence[FlowResult],
    endpoints: Sequence[tuple[str, str]],
    completion_order: Sequence[int],
    horizon: float,
) -> tuple[list[FlowRecord], PopulationSummary]:
    """Fold per-flow results into canonical records + a population summary.

    Records come out in departure order (the order the completion hooks
    fired), with never-completed flows appended in declaration order — the
    same order a streaming engine folds flows, so batch and streamed
    summaries are directly comparable.
    """
    seen = set(completion_order)
    order = list(completion_order) + [i for i in range(len(flows)) if i not in seen]
    acc = SummaryAccumulator(horizon)
    records: list[FlowRecord] = []
    for i in order:
        src, dst = endpoints[i]
        record = FlowRecord.from_flow(flows[i], src=src, dst=dst)
        acc.add(record)
        records.append(record)
    return records, acc.finalize()


def _report_packet_counters(sim: Simulator, scenario: Scenario,
                            flows: Sequence[FlowResult]) -> None:
    """Feed the ambient telemetry the packet engine's work counters."""
    telemetry = obs.active_telemetry()
    if telemetry is None:
        return
    telemetry.count("events", sim.events_processed)
    telemetry.count("events_scheduled", sim.events_scheduled)
    telemetry.count("packets_forwarded",
                    sum(iface.stats.packets_sent
                        for iface in scenario.topology.interfaces()))
    telemetry.count("rto_timer_fires", sum(f.timeouts for f in flows))
    telemetry.count("send_stalls", sum(f.send_stalls for f in flows))


# ---------------------------------------------------------------------------
# packet backend (registered as "packet" in repro.spec.backends)
# ---------------------------------------------------------------------------

def execute_packet_run(spec: RunSpec) -> SingleFlowResult:
    """Run one bulk transfer on the event-driven packet engine.

    Without a ``scenario`` the canonical single-flow dumbbell is built from
    ``spec.config`` (the legacy shape, byte-for-byte).  With a scenario the
    compiler instantiates the declared topology; the scenario's first flow
    places the measured transfer (the spec's ``cc``/``total_bytes`` pick the
    algorithm and size), later flows and cross traffic run as declared.
    """
    with obs.span("compile"):
        cfg = spec.config
        sim = Simulator(seed=spec.seed)

        options = cfg.tcp_options()
        if spec.local_congestion_policy is not None:
            options = options.replace(local_congestion_policy=spec.local_congestion_policy)

        if spec.cc == "restricted":
            rss = (spec.rss_config if spec.rss_config is not None
                   else RestrictedSlowStartConfig.for_path(cfg.rtt))
            primary_cc: str | object = lambda ctx: RestrictedSlowStart(ctx, rss)  # noqa: E731
            primary_kwargs = None
        else:
            primary_cc = spec.cc
            primary_kwargs = spec.cc_kwargs or None

        if spec.scenario is None:
            scenario = build_dumbbell(sim, cfg, n_flows=1)
            app, _sink = scenario.add_bulk_flow(
                index=0, cc=primary_cc, total_bytes=spec.total_bytes,
                options=options, cc_kwargs=primary_kwargs,
            )
            primary_ifq = scenario.sender_ifq(0)
            bottleneck_drops = lambda: scenario.bottleneck_interface().queue.stats.dropped  # noqa: E731
            bottleneck_marks = lambda: scenario.bottleneck_interface().queue.stats.marked  # noqa: E731
        else:
            from ..workloads.compile import (
                attach_workload,
                compile_scenario,
                core_drops,
                core_marks,
            )

            scn = spec.scenario
            scenario = compile_scenario(sim, scn, attach_flows=False)
            primary = scn.flows[0]
            if primary.ecn:
                options = options.replace(ecn=True)
            app, _sink = scenario.add_bulk_flow_between(
                primary.src, primary.dst, cc=primary_cc,
                total_bytes=spec.total_bytes, start_time=primary.start_time,
                stop_time=primary.stop_time,
                options=options, cc_kwargs=primary_kwargs, port=primary.port,
                name=f"flow0:{spec.cc}",
            )
            attach_workload(scenario, scn, skip_first_flow=True)
            primary_ifq = scenario.topology.node(primary.src).default_interface
            if len(scenario.routers) == 2:
                # same counter the legacy dumbbell path reports
                bottleneck_drops = lambda: scenario.bottleneck_interface().queue.stats.dropped  # noqa: E731
                bottleneck_marks = lambda: scenario.bottleneck_interface().queue.stats.marked  # noqa: E731
            else:
                bottleneck_drops = lambda: core_drops(scenario.topology)  # noqa: E731
                bottleneck_marks = lambda: core_marks(scenario.topology)  # noqa: E731

        trace_interval = (spec.trace_interval if spec.trace_interval is not None
                          else DEFAULT_PACKET_TRACE_INTERVAL)
        conn = app.connection
        monitor = IFQMonitor(sim, primary_ifq, interval=trace_interval)
        monitor.start()
        tracer = TimeSeriesTracer(sim, interval=trace_interval)
        tracer.add_probe("cwnd", lambda: conn.cc.cwnd)
        tracer.add_probe("acked", lambda: conn.stats.ThruBytesAcked)
        tracer.start()

    with obs.span("simulate"):
        sim.run(until=spec.duration)
        if (spec.run_past_duration_until_complete and spec.total_bytes is not None
                and not app.completed):
            sim.run(until=spec.duration * 10.0)

    with obs.span("summarize"):
        elapsed = sim.now
        flow = FlowResult.from_app(app, algorithm=spec.cc, duration=elapsed)
        ifq_times, ifq_occ = monitor.as_arrays()
        cwnd_times, cwnd_vals = tracer.series("cwnd").as_arrays()
        acked_times, acked_vals = tracer.series("acked").as_arrays()
        ifq_queue = primary_ifq.queue
        result = SingleFlowResult(
            config=cfg,
            duration=elapsed,
            seed=spec.seed,
            flow=flow,
            ifq_times=ifq_times,
            ifq_occupancy=ifq_occ,
            ifq_peak=ifq_queue.stats.peak_packets,
            ifq_drops=ifq_queue.stats.dropped,
            bottleneck_drops=bottleneck_drops(),
            bottleneck_marks=bottleneck_marks(),
            cwnd_times=cwnd_times,
            cwnd_segments=cwnd_vals,
            acked_times=acked_times,
            acked_bytes=acked_vals,
            events_processed=sim.events_processed,
        )
        _report_packet_counters(sim, scenario, [flow])
    return result


def execute_multi_flow_spec(spec: MultiFlowSpec) -> MultiFlowResult:
    """Run several concurrent bulk flows on the packet engine.

    With a ``scenario`` the compiler instantiates the declared topology and
    attaches the declared flows/cross traffic; the legacy dumbbell form
    (``flows=``/``shared_paths=``) stays byte-for-byte unchanged.
    """
    if spec.scenario is not None:
        return _execute_scenario_multi_flow(spec)
    with obs.span("compile"):
        cfg = spec.config
        sim = Simulator(seed=spec.seed)
        n_paths = 1 if spec.shared_paths else len(spec.flows)
        scenario: Scenario = build_dumbbell(sim, cfg, n_flows=n_paths)

        apps: list[tuple[BulkSenderApp, str]] = []
        endpoints: list[tuple[str, str]] = []
        completion_order: list[int] = []
        for i, flow_spec in enumerate(spec.flows):
            index = 0 if spec.shared_paths else i
            rss = RestrictedSlowStartConfig.for_path(cfg.rtt)
            if flow_spec.cc == "restricted":
                factory = lambda ctx, _rss=rss: RestrictedSlowStart(ctx, _rss)  # noqa: E731
                app, sink = scenario.add_bulk_flow(
                    index=index, cc=factory, total_bytes=flow_spec.total_bytes,
                    start_time=flow_spec.start_time, name=f"flow{i}:{flow_spec.cc}",
                )
            else:
                app, sink = scenario.add_bulk_flow(
                    index=index, cc=flow_spec.cc, total_bytes=flow_spec.total_bytes,
                    start_time=flow_spec.start_time, cc_kwargs=flow_spec.cc_kwargs,
                    name=f"flow{i}:{flow_spec.cc}",
                )
            app.on_complete = lambda _app, _i=i: completion_order.append(_i)
            apps.append((app, flow_spec.cc))
            endpoints.append((app.host.name, sink.host.name))

    with obs.span("simulate"):
        sim.run(until=spec.duration)

    with obs.span("summarize"):
        flows = [FlowResult.from_app(app, algorithm=cc, duration=sim.now - app.start_time)
                 for app, cc in apps]
        records, summary = _population_outcomes(
            flows, endpoints, completion_order, horizon=spec.duration)
        goodputs = [f.goodput_bps for f in flows]
        aggregate = float(sum(goodputs))
        result = MultiFlowResult(
            config=cfg,
            duration=sim.now,
            seed=spec.seed,
            flows=flows,
            aggregate_goodput_bps=aggregate,
            jain_index=jain_fairness_index(goodputs),
            link_utilization=utilization(aggregate, cfg.bottleneck_rate_bps),
            bottleneck_drops=scenario.bottleneck_interface().queue.stats.dropped,
            bottleneck_marks=scenario.bottleneck_interface().queue.stats.marked,
            total_send_stalls=sum(f.send_stalls for f in flows),
            records=records,
            summary=summary,
        )
        _report_packet_counters(sim, scenario, flows)
    return result


def _execute_scenario_multi_flow(spec: MultiFlowSpec) -> MultiFlowResult:
    """Run a declared scenario's flows (and cross traffic) as a multi-flow run."""
    from ..workloads.compile import (
        compile_scenario,
        core_capacity_bps,
        core_drops,
        core_marks,
    )

    with obs.span("compile"):
        scn = spec.scenario
        cfg = scn.config
        sim = Simulator(seed=spec.seed)
        scenario = compile_scenario(sim, scn)
        completion_order: list[int] = []
        for i, (app, _sink) in enumerate(scenario.flows):
            app.on_complete = lambda _app, _i=i: completion_order.append(_i)

    with obs.span("simulate"):
        sim.run(until=spec.duration)

    with obs.span("summarize"):
        flows = [
            FlowResult.from_app(app, algorithm=flow_spec.cc,
                                duration=sim.now - app.start_time)
            for (app, _sink), flow_spec in zip(scenario.flows, scn.flows)
        ]
        endpoints = [(app.host.name, sink.host.name) for app, sink in scenario.flows]
        records, summary = _population_outcomes(
            flows, endpoints, completion_order, horizon=spec.duration)
        goodputs = [f.goodput_bps for f in flows]
        aggregate = float(sum(goodputs))
        if len(scenario.routers) == 2:
            # the declared bottleneck link's rate, which a hand-written spec may
            # set independently of config.bottleneck_rate_bps
            drops = scenario.bottleneck_interface().queue.stats.dropped
            marks = scenario.bottleneck_interface().queue.stats.marked
            capacity = scenario.bottleneck_interface().rate_bps
        else:
            # multi-bottleneck graphs: count drops over every core queue and
            # normalise the aggregate by the total core capacity so the
            # reported utilisation stays in [0, 1]; router-less toy graphs fall
            # back to the total forward link capacity
            drops = core_drops(scenario.topology)
            marks = core_marks(scenario.topology)
            capacity = (core_capacity_bps(scenario.topology)
                        or float(sum(l.rate_bps for l in scenario.topology.links)))
        result = MultiFlowResult(
            config=cfg,
            duration=sim.now,
            seed=spec.seed,
            flows=flows,
            aggregate_goodput_bps=aggregate,
            jain_index=jain_fairness_index(goodputs),
            link_utilization=utilization(aggregate, capacity),
            bottleneck_drops=drops,
            bottleneck_marks=marks,
            total_send_stalls=sum(f.send_stalls for f in flows),
            records=records,
            summary=summary,
        )
        _report_packet_counters(sim, scenario, flows)
    return result


# ---------------------------------------------------------------------------
# deprecated keyword wrappers (construct specs; see README "Spec API")
# ---------------------------------------------------------------------------

def run_single_flow(
    cc: str = "reno",
    config: PathConfig | None = None,
    duration: float = 25.0,
    seed: int = 1,
    total_bytes: int | None = None,
    cc_kwargs: dict | None = None,
    rss_config: RestrictedSlowStartConfig | None = None,
    local_congestion_policy: LocalCongestionPolicy | None = None,
    trace_interval: float | None = None,
    run_past_duration_until_complete: bool = False,
    backend: str = "packet",
) -> SingleFlowResult:
    """Run one bulk transfer and collect everything the experiments report.

    .. deprecated::
        Thin wrapper over ``execute(RunSpec(...))`` kept for downstream
        code; new code should construct a :class:`repro.spec.RunSpec`.

    Parameters
    ----------
    cc:
        Congestion-control registry name ("reno", "restricted", ...).
    config:
        Path parameters; defaults to the paper's ANL–LBNL path.
    duration:
        Simulated seconds (the paper's Figure 1 covers 25 s).
    seed:
        Master seed for the simulator's random streams.
    total_bytes:
        Finite transfer size, or ``None`` for a transfer that fills the whole
        duration.
    cc_kwargs:
        Extra keyword arguments for the algorithm factory (ignored when
        ``rss_config`` is given for the restricted algorithm).
    rss_config:
        Explicit :class:`RestrictedSlowStartConfig` for ``cc="restricted"``.
    local_congestion_policy:
        Override the stack's reaction to send-stalls (ablation E6).
    trace_interval:
        Sampling period of the IFQ / cwnd / goodput traces; ``None`` (the
        default) uses the backend's native resolution — 0.05 s on the
        packet engine, one sample per round trip on the fluid engine (which
        warns if an explicit interval is requested).
    run_past_duration_until_complete:
        With a finite ``total_bytes``, keep simulating (up to 10× duration)
        until the transfer completes — used by the transfer-size sweep.
    backend:
        Registered engine name (``"packet"`` — event-driven ground truth —
        or ``"fluid"`` — the per-RTT difference-equation fast path).
        Validated eagerly: an unknown name raises :class:`ExperimentError`
        listing the registered backends before any simulation work.
    """
    spec = RunSpec(
        cc=cc,
        config=config if config is not None else PathConfig(),
        duration=duration,
        seed=seed,
        total_bytes=total_bytes,
        cc_kwargs=dict(cc_kwargs) if cc_kwargs else {},
        rss_config=rss_config,
        local_congestion_policy=local_congestion_policy,
        trace_interval=trace_interval,
        run_past_duration_until_complete=run_past_duration_until_complete,
        backend=backend,
    )
    return execute(spec)


def run_comparison(
    algorithms: Sequence[str] = ("reno", "restricted"),
    baseline: str = "reno",
    **kwargs,
) -> ComparisonResult:
    """Run the same single-flow workload under several algorithms.

    .. deprecated::
        Thin wrapper over ``execute(ComparisonSpec(...))``; ``kwargs`` are
        the :class:`repro.spec.RunSpec` fields (config, duration, seed,
        backend, ...).
    """
    spec = ComparisonSpec(base=RunSpec.from_kwargs(**kwargs),
                          algorithms=tuple(algorithms), baseline=baseline)
    return execute(spec)


def run_multi_flow(
    specs: Sequence[BulkFlowSpec],
    config: PathConfig | None = None,
    duration: float = 25.0,
    seed: int = 1,
    shared_paths: bool = False,
) -> MultiFlowResult:
    """Run several concurrent bulk flows over one bottleneck.

    .. deprecated::
        The dumbbell shape (and the ``shared_paths`` knob) is now
        declarative: this wrapper converts its arguments into the
        equivalent :class:`~repro.spec.scenario.ScenarioSpec` (via
        :func:`repro.spec.scenario.from_bulk_flows`) and executes a
        ``MultiFlowSpec(scenario=...)``, emitting a ``DeprecationWarning``.
        Build the scenario spec directly in new code.

    ``shared_paths=False`` gives every flow its own sender/receiver pair (the
    usual dumbbell); ``True`` puts all flows on the first pair so they also
    share the sending host's IFQ.  One behavioural repair rides along: an
    explicit ``BulkFlowSpec.path_index`` is now honoured (the legacy runner
    silently ignored it); specs leaving it ``None`` reproduce the legacy
    placement exactly.
    """
    warnings.warn(
        "run_multi_flow is deprecated: declare the scenario instead — "
        "execute(MultiFlowSpec(scenario=repro.spec.from_bulk_flows(specs, "
        "config, shared_paths), duration=..., seed=...))",
        DeprecationWarning, stacklevel=2)
    from ..spec.scenario import from_bulk_flows

    spec = MultiFlowSpec(
        scenario=from_bulk_flows(tuple(specs), config=config,
                                 shared_paths=shared_paths),
        duration=duration,
        seed=seed,
    )
    return execute(spec)
