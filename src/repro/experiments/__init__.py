"""Experiment harness reproducing every figure/table plus the ablations."""

from .baselines import BaselineComparisonResult, render_baselines, run_baseline_comparison
from .fairness import FairnessResult, flow_mix, render_fairness, run_fairness
from .figure1 import Figure1Result, render_figure1, run_figure1
from .parallel import default_worker_count, map_runs, run_single_flow_batch
from .registry import EXPERIMENTS, ExperimentSpec, all_experiments, get_experiment
from .report import (
    comparison_table,
    cumulative_stall_series,
    multi_flow_table,
    render_series,
    single_flow_summary,
)
from .runner import (
    ComparisonResult,
    FlowResult,
    MultiFlowResult,
    SingleFlowResult,
    run_comparison,
    run_multi_flow,
    run_single_flow,
)
from .sweeps import (
    SweepResult,
    bandwidth_sweep,
    ifq_size_sweep,
    render_sweep,
    rtt_sweep,
    setpoint_sweep,
    transfer_size_sweep,
)
from .throughput import ThroughputResult, render_throughput, run_throughput_comparison
from .tuning_ablation import (
    TuningAblationResult,
    render_tuning_ablation,
    run_tuning_ablation,
)

__all__ = [
    "run_single_flow",
    "run_comparison",
    "run_multi_flow",
    "FlowResult",
    "SingleFlowResult",
    "MultiFlowResult",
    "ComparisonResult",
    "run_figure1",
    "render_figure1",
    "Figure1Result",
    "run_throughput_comparison",
    "render_throughput",
    "ThroughputResult",
    "SweepResult",
    "ifq_size_sweep",
    "rtt_sweep",
    "bandwidth_sweep",
    "setpoint_sweep",
    "transfer_size_sweep",
    "render_sweep",
    "run_tuning_ablation",
    "render_tuning_ablation",
    "TuningAblationResult",
    "run_baseline_comparison",
    "render_baselines",
    "BaselineComparisonResult",
    "run_fairness",
    "render_fairness",
    "flow_mix",
    "FairnessResult",
    "comparison_table",
    "multi_flow_table",
    "single_flow_summary",
    "cumulative_stall_series",
    "render_series",
    "map_runs",
    "run_single_flow_batch",
    "default_worker_count",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "all_experiments",
]
