"""E7 — Ziegler–Nichols tuning-rule ablation.

The paper uses the modified constants Kp=0.33Kc, Ti=0.5Tc, Td=0.33Tc.  This
benchmark replays the workload with the classic ZN PID/PI rules,
Tyreus–Luyben, the no-overshoot variant and relay-feedback-derived gains.
Expected shape: every reasonable rule avoids stalls on the paper path (the
controller's job is easy once the IFQ is sensed at all); the differences show
up in how tightly the queue tracks the set point and in goodput during the
ramp.
"""

from __future__ import annotations

from repro.experiments import render_tuning_ablation, run_tuning_ablation

from .conftest import emit, scaled


def test_tuning_rule_ablation(bench_once, benchmark):
    result = bench_once(
        run_tuning_ablation,
        duration=scaled(12.0),
        seed=1,
        max_workers=None,
    )
    emit(benchmark, render_tuning_ablation(result), best_rule=result.best_rule())
    paper_row = result.row_for("allcock_modified")
    # the paper's rule must be stall-free and near full utilisation
    assert paper_row["send_stalls"] == 0
    assert paper_row["utilization"] > 0.7
    # at least one alternative rule is also viable (sanity of the harness)
    viable = [row for row in result.rows if row["send_stalls"] == 0]
    assert len(viable) >= 2
