"""Tests for the socket façade and traffic-generating applications."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.host import (
    BulkSenderApp,
    CBRSource,
    OnOffSource,
    PoissonSource,
    SinkApp,
    listen,
    open_connection,
)
from repro.tcp.cc import cc_factory
from repro.units import Mbps
from repro.workloads import build_dumbbell


class TestSockets:
    def test_socket_roundtrip(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        received = []
        accepted = []

        def on_conn(sock):
            accepted.append(sock)
            sock.on_data = received.append

        listen(receiver, 8080, options=small_scenario.config.tcp_options(),
               on_connection=on_conn)
        sock = open_connection(sender, receiver.address, 8080,
                               options=small_scenario.config.tcp_options())
        sock.send(30_000)
        sim.run(until=3.0)
        assert sum(received) == 30_000
        assert sock.bytes_acked == 30_000
        assert sock.bytes_pending == 0
        assert sock.is_established
        assert len(accepted) == 1
        assert accepted[0].bytes_delivered == 30_000

    def test_on_all_acked_callback(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        listen(receiver, 8081, options=small_scenario.config.tcp_options())
        sock = open_connection(sender, receiver.address, 8081,
                               options=small_scenario.config.tcp_options())
        done = []
        sock.on_all_acked = lambda: done.append(sim.now)
        sock.send(5_000)
        sim.run(until=2.0)
        assert len(done) == 1

    def test_socket_exposes_stats_and_cwnd(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        listen(receiver, 8082, options=small_scenario.config.tcp_options())
        sock = open_connection(sender, receiver.address, 8082,
                               options=small_scenario.config.tcp_options())
        sock.send(10_000)
        sim.run(until=2.0)
        assert sock.stats.DataPktsOut > 0
        assert sock.cwnd_bytes > 0


class TestBulkSenderApp:
    def test_finite_transfer_completes(self, sim, small_scenario):
        opts = small_scenario.config.tcp_options()
        sink = SinkApp(small_scenario.receivers[0], 7000, options=opts)
        app = BulkSenderApp(sim, small_scenario.senders[0],
                            small_scenario.receivers[0].address, 7000,
                            total_bytes=40_000, options=opts,
                            cc_factory=cc_factory("reno"))
        sim.run(until=3.0)
        assert app.completed
        assert app.completion_time is not None
        assert app.elapsed() == pytest.approx(app.completion_time)
        assert sink.bytes_received == 40_000

    def test_unlimited_transfer_never_completes(self, sim, small_scenario):
        opts = small_scenario.config.tcp_options()
        SinkApp(small_scenario.receivers[0], 7000, options=opts)
        app = BulkSenderApp(sim, small_scenario.senders[0],
                            small_scenario.receivers[0].address, 7000,
                            total_bytes=None, options=opts,
                            cc_factory=cc_factory("reno"))
        sim.run(until=2.0)
        assert not app.completed
        assert app.bytes_acked > 0

    def test_goodput_zero_before_start(self, sim, small_scenario):
        opts = small_scenario.config.tcp_options()
        SinkApp(small_scenario.receivers[0], 7000, options=opts)
        app = BulkSenderApp(sim, small_scenario.senders[0],
                            small_scenario.receivers[0].address, 7000,
                            total_bytes=1000, start_time=1.0, options=opts)
        assert app.goodput_bps() == 0.0

    def test_invalid_total_bytes(self, sim, small_scenario):
        with pytest.raises(ConfigurationError):
            BulkSenderApp(sim, small_scenario.senders[0],
                          small_scenario.receivers[0].address, 7000, total_bytes=0)


class TestCrossTrafficSources:
    def test_cbr_rate_close_to_target(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        source = CBRSource(sim, sender, receiver.address, 9000,
                           rate_bps=Mbps(2), packet_bytes=1000)
        sim.run(until=2.0)
        assert source.rate_sent_bps() == pytest.approx(Mbps(2), rel=0.05)
        assert receiver.udp_bytes_received > 0

    def test_cbr_stop_time(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        source = CBRSource(sim, sender, receiver.address, 9000,
                           rate_bps=Mbps(2), packet_bytes=1000, stop_time=0.5)
        sim.run(until=2.0)
        sent_at_stop = source.packets_sent
        assert sent_at_stop <= Mbps(2) * 0.5 / 8000 + 2

    def test_poisson_mean_rate(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        source = PoissonSource(sim, sender, receiver.address, 9000,
                               rate_bps=Mbps(2), packet_bytes=1000)
        sim.run(until=4.0)
        assert source.rate_sent_bps() == pytest.approx(Mbps(2), rel=0.25)

    def test_poisson_is_reproducible(self, small_scenario, small_path):
        from repro.sim import Simulator
        from repro.workloads import build_dumbbell

        def run(seed):
            sim = Simulator(seed=seed)
            scen = build_dumbbell(sim, small_path, n_flows=1)
            src = PoissonSource(sim, scen.senders[0], scen.receivers[0].address, 9000,
                                rate_bps=Mbps(1), packet_bytes=500, name="p")
            sim.run(until=1.0)
            return src.packets_sent

        assert run(11) == run(11)

    def test_onoff_sends_less_than_cbr_at_same_peak(self, small_path):
        from repro.sim import Simulator
        from repro.workloads import build_dumbbell

        def run(kind):
            sim = Simulator(seed=9)
            scen = build_dumbbell(sim, small_path, n_flows=1)
            cls = CBRSource if kind == "cbr" else OnOffSource
            kwargs = dict(packet_bytes=1000)
            if kind == "cbr":
                kwargs["rate_bps"] = Mbps(2)
            else:
                kwargs.update(peak_rate_bps=Mbps(2), mean_on_time=0.2, mean_off_time=0.2)
            src = cls(sim, scen.senders[0], scen.receivers[0].address, 9000, **kwargs)
            sim.run(until=4.0)
            return src.bytes_sent

        assert run("onoff") < run("cbr")

    def test_invalid_rates_rejected(self, sim, small_scenario):
        sender = small_scenario.senders[0]
        receiver = small_scenario.receivers[0]
        with pytest.raises(ConfigurationError):
            CBRSource(sim, sender, receiver.address, 9000, rate_bps=0)
        with pytest.raises(ConfigurationError):
            PoissonSource(sim, sender, receiver.address, 9000, rate_bps=-1)
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, sender, receiver.address, 9000, peak_rate_bps=Mbps(1),
                        mean_on_time=0.0)
