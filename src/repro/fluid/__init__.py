"""Fluid-model fast path for parameter sweeps.

A per-round-trip difference-equation model of cwnd growth, IFQ occupancy,
bottleneck queueing and loss for the algorithms the paper evaluates (Reno,
restricted slow-start, limited slow-start).  No per-packet events: a 25 s
run costs thousands of arithmetic steps instead of millions of events,
which makes the E3–E5 style sweeps cheap while the packet engine remains
the ground truth (see :mod:`repro.fluid.validate` for the agreement gate).

Select it anywhere the experiment harness runs a single flow::

    from repro.experiments import run_single_flow

    fast = run_single_flow("restricted", duration=25.0, backend="fluid")
"""

from .backend import (
    FLUID_BACKEND,
    VECTOR_FLOW_THRESHOLD,
    execute_fluid_multi_flow,
    run_single_flow_fluid,
)
from .model import (
    FLUID_ALGORITHMS,
    FluidFlowInput,
    FluidFlowModel,
    FluidGrowthRule,
    FluidMultiFlowModel,
    FluidMultiFlowResult,
    FluidRunResult,
    LimitedSlowStartFluid,
    RenoFluid,
    RestrictedFluid,
    fluid_growth_rule,
)
from .validate import (
    DEFAULT_FAIRNESS_TOLERANCE,
    DEFAULT_TOLERANCE,
    FairnessTolerance,
    FairnessValidationReport,
    FairnessValidationRow,
    Tolerance,
    ValidationReport,
    ValidationRow,
    cross_validate,
    cross_validate_fairness,
    cross_validate_population,
    default_fairness_grid,
    default_grid,
)
from .vector import ChurnArrival, FlowArrivalSpec, FluidPopulationModel

__all__ = [
    "FLUID_BACKEND",
    "FLUID_ALGORITHMS",
    "VECTOR_FLOW_THRESHOLD",
    "FluidPopulationModel",
    "FlowArrivalSpec",
    "ChurnArrival",
    "cross_validate_population",
    "run_single_flow_fluid",
    "execute_fluid_multi_flow",
    "FluidFlowModel",
    "FluidFlowInput",
    "FluidMultiFlowModel",
    "FluidMultiFlowResult",
    "FluidGrowthRule",
    "FluidRunResult",
    "RenoFluid",
    "RestrictedFluid",
    "LimitedSlowStartFluid",
    "fluid_growth_rule",
    "cross_validate",
    "cross_validate_fairness",
    "default_grid",
    "default_fairness_grid",
    "Tolerance",
    "FairnessTolerance",
    "DEFAULT_TOLERANCE",
    "DEFAULT_FAIRNESS_TOLERANCE",
    "ValidationReport",
    "ValidationRow",
    "FairnessValidationReport",
    "FairnessValidationRow",
]
