"""Tests for the canonical per-flow outcome record."""

from __future__ import annotations

import dataclasses

import pytest

from repro.metrics import FlowRecord, class_label_for


class TestClassLabel:
    def test_churn_prefix(self):
        assert class_label_for("churn17:reno") == "churn"

    def test_declared_default(self):
        assert class_label_for("flow0:reno") == "declared"
        assert class_label_for("crosstalk") == "declared"


class TestValidation:
    def test_minimal_record(self):
        record = FlowRecord(flow_id="f0", cc="reno")
        assert not record.completed
        assert record.fct is None
        assert record.class_label == "declared"

    def test_empty_flow_id_rejected(self):
        with pytest.raises(ValueError, match="flow_id"):
            FlowRecord(flow_id="", cc="reno")

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_time"):
            FlowRecord(flow_id="f0", cc="reno", start_time=-1.0)

    def test_completion_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            FlowRecord(flow_id="f0", cc="reno", start_time=5.0,
                       completion_time=4.0)

    @pytest.mark.parametrize("field,value", [
        ("bytes_acked", -1), ("goodput_bps", -0.5),
        ("send_stalls", -1), ("loss_events", -2), ("retransmits", -1),
    ])
    def test_negative_counters_rejected(self, field, value):
        with pytest.raises(ValueError):
            FlowRecord(flow_id="f0", cc="reno", **{field: value})

    def test_frozen(self):
        record = FlowRecord(flow_id="f0", cc="reno")
        with pytest.raises(dataclasses.FrozenInstanceError):
            record.bytes_acked = 7


class TestFctProperty:
    def test_completed_flow(self):
        record = FlowRecord(flow_id="f0", cc="reno", start_time=1.5,
                            completion_time=4.0)
        assert record.completed
        assert record.fct == pytest.approx(2.5)

    def test_zero_fct_allowed(self):
        record = FlowRecord(flow_id="f0", cc="reno", start_time=2.0,
                            completion_time=2.0)
        assert record.fct == 0.0


class _StubOutcome:
    """Duck-typed engine outcome (the shared FlowResult/FluidFlowOutcome
    surface from_flow reads)."""

    name = "churn3:reno"
    algorithm = "reno"
    start_time = 0.5
    completion_time = 2.5
    bytes_acked = 10_000
    goodput_bps = 40_000.0
    send_stalls = 2
    congestion_signals = 3
    pkts_retrans = 1


class TestFromFlow:
    def test_duck_typed_fields(self):
        record = FlowRecord.from_flow(_StubOutcome(), src="sender0",
                                      dst="receiver0")
        assert record.flow_id == "churn3:reno"
        assert record.cc == "reno"
        assert record.class_label == "churn"  # inferred from the name
        assert record.src == "sender0"
        assert record.fct == pytest.approx(2.0)
        assert record.loss_events == 3
        assert record.retransmits == 1

    def test_explicit_class_label_wins(self):
        record = FlowRecord.from_flow(_StubOutcome(), class_label="declared")
        assert record.class_label == "declared"


class TestSerialization:
    def test_round_trip(self):
        record = FlowRecord(flow_id="f0", cc="restricted", src="a", dst="b",
                            start_time=1.0, completion_time=3.0,
                            bytes_acked=5, goodput_bps=10.0, send_stalls=1,
                            loss_events=2, retransmits=3)
        assert FlowRecord.from_dict(record.to_dict()) == record

    def test_incomplete_round_trips(self):
        record = FlowRecord(flow_id="f0", cc="reno")
        clone = FlowRecord.from_dict(record.to_dict())
        assert clone.completion_time is None

    def test_unknown_field_rejected(self):
        data = FlowRecord(flow_id="f0", cc="reno").to_dict()
        data["rtt"] = 0.02
        with pytest.raises(ValueError, match="unknown FlowRecord"):
            FlowRecord.from_dict(data)
