"""Unit tests for the congestion-control algorithms (window arithmetic only)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.tcp import TCPOptions
from repro.tcp.cc import (
    CCContext,
    CubicCC,
    HyStartCC,
    LimitedSlowStartCC,
    NewRenoCC,
    RenoCC,
    available_algorithms,
    cc_factory,
    create_cc,
    register_cc,
)

MSS = 1000


def make_ctx(sim=None, ifq=None, **option_overrides):
    options = TCPOptions(mss=MSS, rwnd_bytes=10_000_000, **option_overrides)
    sim = sim if sim is not None else Simulator(seed=1)
    probe = (lambda: ifq) if ifq is not None else None
    return sim, CCContext(sim, options, ifq_probe=probe)


class TestCCContext:
    def test_exposes_mss_and_clock(self):
        sim, ctx = make_ctx()
        assert ctx.mss == MSS
        assert ctx.now == sim.now

    def test_ifq_state_default(self):
        _, ctx = make_ctx()
        assert ctx.ifq_state() == (0, None)

    def test_ifq_state_probe(self):
        _, ctx = make_ctx(ifq=(42, 100))
        assert ctx.ifq_state() == (42, 100)


class TestRenoSlowStart:
    def test_initial_window(self):
        _, ctx = make_ctx(initial_cwnd_segments=2)
        cc = RenoCC(ctx)
        assert cc.cwnd == 2.0
        assert math.isinf(cc.ssthresh)
        assert cc.in_slow_start

    def test_grows_one_segment_per_acked_segment(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.on_ack(MSS, 0.05, 2 * MSS)
        assert cc.cwnd == pytest.approx(3.0)

    def test_doubling_per_round(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        # ACK a full window's worth of segments => window doubles
        start = cc.cwnd
        for _ in range(int(start)):
            cc.on_ack(MSS, 0.05, int(cc.cwnd) * MSS)
        assert cc.cwnd == pytest.approx(2 * start)

    def test_growth_caps_at_ssthresh_then_linear(self):
        _, ctx = make_ctx(initial_ssthresh_segments=4)
        cc = RenoCC(ctx)
        cc.on_ack(2 * MSS, 0.05, 2 * MSS)   # reaches ssthresh exactly
        assert cc.cwnd == pytest.approx(4.0)
        cc.on_ack(MSS, 0.05, 4 * MSS)
        assert cc.cwnd == pytest.approx(4.25)
        assert not cc.in_slow_start

    def test_congestion_avoidance_one_segment_per_rtt(self):
        _, ctx = make_ctx(initial_ssthresh_segments=2)
        cc = RenoCC(ctx)
        cc.ssthresh = 2.0
        cc.cwnd = 10.0
        for _ in range(10):
            cc.on_ack(MSS, 0.05, 10 * MSS)
        assert cc.cwnd == pytest.approx(11.0, rel=0.02)


class TestRenoDecrease:
    def test_enter_recovery_halves_flight(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 20.0
        cc.on_enter_recovery(in_flight_bytes=20 * MSS)
        assert cc.ssthresh == pytest.approx(10.0)
        assert cc.cwnd == pytest.approx(13.0)   # ssthresh + 3
        assert cc.reductions == 1

    def test_dupack_inflation(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 10.0
        cc.on_dupack_in_recovery()
        assert cc.cwnd == 11.0

    def test_partial_ack_deflation(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 10.0
        cc.on_partial_ack(acked_bytes=3 * MSS)
        assert cc.cwnd == pytest.approx(8.0)

    def test_exit_recovery_returns_to_ssthresh(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.ssthresh = 8.0
        cc.cwnd = 15.0
        cc.on_exit_recovery()
        assert cc.cwnd == 8.0

    def test_rto_collapses_to_one_segment(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 30.0
        cc.on_rto(in_flight_bytes=30 * MSS)
        assert cc.cwnd == 1.0
        assert cc.ssthresh == pytest.approx(15.0)

    def test_ssthresh_floor_of_two_segments(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 2.0
        cc.on_rto(in_flight_bytes=MSS)
        assert cc.ssthresh == 2.0

    def test_local_congestion_reacts_like_congestion(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 40.0
        cc.on_local_congestion(qlen=100, capacity=100, in_flight_bytes=40 * MSS)
        assert cc.ssthresh == pytest.approx(20.0)
        assert cc.cwnd == pytest.approx(20.0)
        assert not cc.in_slow_start

    def test_clamp_to_flight(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 50.0
        cc.on_clamp_to_flight(in_flight_bytes=10 * MSS)
        assert cc.cwnd == pytest.approx(11.0)

    def test_after_idle_halves_ca_window(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.ssthresh = 5.0
        cc.cwnd = 40.0
        cc.after_idle(idle_time=10.0, rto=1.0)
        assert cc.cwnd == pytest.approx(20.0)

    def test_after_idle_noop_when_not_idle_long(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.ssthresh = 5.0
        cc.cwnd = 40.0
        cc.after_idle(idle_time=0.1, rto=1.0)
        assert cc.cwnd == 40.0

    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_cwnd_never_below_minimum_after_events(self, start_cwnd):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = start_cwnd
        cc.on_enter_recovery(int(start_cwnd) * MSS)
        cc.on_partial_ack(MSS)
        cc.on_exit_recovery()
        cc.on_rto(int(cc.cwnd) * MSS)
        assert cc.cwnd >= cc.min_cwnd
        assert cc.ssthresh >= 2.0
        cc.validate()


class TestByteCounting:
    def test_cwnd_bytes_property(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        cc.cwnd = 12.5
        assert cc.cwnd_bytes == 12_500

    def test_ssthresh_bytes_infinite(self):
        _, ctx = make_ctx()
        cc = RenoCC(ctx)
        assert math.isinf(cc.ssthresh_bytes)


class TestNewReno:
    def test_same_growth_as_reno(self):
        _, ctx1 = make_ctx()
        _, ctx2 = make_ctx()
        reno, newreno = RenoCC(ctx1), NewRenoCC(ctx2)
        for _ in range(10):
            reno.on_ack(MSS, 0.05, 10 * MSS)
            newreno.on_ack(MSS, 0.05, 10 * MSS)
        assert reno.cwnd == pytest.approx(newreno.cwnd)

    def test_registry_name(self):
        assert NewRenoCC.name == "newreno"


class TestLimitedSlowStart:
    def test_standard_growth_below_max_ssthresh(self):
        _, ctx = make_ctx()
        cc = LimitedSlowStartCC(ctx, max_ssthresh_segments=100)
        cc.cwnd = 50.0
        cc.on_ack(MSS, 0.05, 50 * MSS)
        assert cc.cwnd == pytest.approx(51.0)

    def test_throttled_growth_above_max_ssthresh(self):
        _, ctx = make_ctx()
        cc = LimitedSlowStartCC(ctx, max_ssthresh_segments=100)
        cc.cwnd = 400.0
        cc.on_ack(MSS, 0.05, 400 * MSS)
        # K = 400 / 50 = 8 -> +1/8 segment
        assert cc.cwnd == pytest.approx(400.125)

    def test_growth_rate_decreases_with_window(self):
        _, ctx = make_ctx()
        cc = LimitedSlowStartCC(ctx, max_ssthresh_segments=100)
        cc.cwnd = 200.0
        cc.on_ack(MSS, 0.05, 0)
        g1 = cc.cwnd - 200.0
        cc.cwnd = 800.0
        cc.on_ack(MSS, 0.05, 0)
        g2 = cc.cwnd - 800.0
        assert g2 < g1

    def test_invalid_max_ssthresh_rejected(self):
        _, ctx = make_ctx()
        with pytest.raises(ConfigurationError):
            LimitedSlowStartCC(ctx, max_ssthresh_segments=0)


class TestHyStart:
    def test_exits_slow_start_on_rtt_increase(self):
        sim, ctx = make_ctx()
        cc = HyStartCC(ctx)
        cc.cwnd = 50.0
        # first round: baseline RTT 50 ms
        for _ in range(10):
            cc.on_ack(MSS, 0.050, 50 * MSS)
        sim._now = 0.06  # advance past the round boundary
        for _ in range(10):
            cc.on_ack(MSS, 0.050, 50 * MSS)
        sim._now = 0.2
        # later round: RTT grew by far more than eta
        for _ in range(10):
            cc.on_ack(MSS, 0.120, 50 * MSS)
        assert cc.hystart_exits >= 1
        assert not math.isinf(cc.ssthresh)

    def test_no_exit_with_flat_rtt(self):
        sim, ctx = make_ctx()
        cc = HyStartCC(ctx)
        for i in range(50):
            sim._now = i * 0.01
            cc.on_ack(MSS, 0.050, 10 * MSS)
        assert cc.hystart_exits == 0
        assert math.isinf(cc.ssthresh)


class TestCubic:
    def test_slow_start_like_reno(self):
        _, ctx = make_ctx()
        cc = CubicCC(ctx)
        cc.on_ack(MSS, 0.05, MSS)
        assert cc.cwnd == pytest.approx(3.0)

    def test_decrease_uses_beta(self):
        _, ctx = make_ctx()
        cc = CubicCC(ctx)
        cc.cwnd = 100.0
        cc.ssthresh = 50.0
        cc.on_enter_recovery(in_flight_bytes=100 * MSS)
        assert cc.ssthresh == pytest.approx(70.0)

    def test_window_growth_after_reduction_is_concave(self):
        sim, ctx = make_ctx()
        cc = CubicCC(ctx)
        cc.ssthresh = 10.0
        cc.cwnd = 100.0
        cc.on_enter_recovery(in_flight_bytes=100 * MSS)
        cc.on_exit_recovery()
        # simulate ACK-clocked rounds of 50 ms each: cwnd ACKs per round
        round_growth = []
        for step in range(40):
            sim._now = 0.05 * (step + 1)
            before = cc.cwnd
            for _ in range(int(cc.cwnd)):
                cc.on_ack(MSS, 0.05, int(cc.cwnd) * MSS)
            round_growth.append(cc.cwnd - before)
        # concave region: the window approaches (but does not blow past) w_max
        # and the per-round growth shrinks as it gets closer
        assert 70.0 < cc.cwnd <= 105.0
        assert round_growth[-1] < max(round_growth[:10])

    def test_local_congestion_resets_epoch(self):
        _, ctx = make_ctx()
        cc = CubicCC(ctx)
        cc.cwnd = 80.0
        cc.ssthresh = 40.0
        cc.epoch_start = 1.0
        cc.on_local_congestion(90, 100, 80 * MSS)
        assert cc.epoch_start is None
        assert cc.cwnd < 80.0


class TestRegistry:
    def test_builtin_algorithms_registered(self):
        names = available_algorithms()
        for expected in ("reno", "newreno", "limited_slow_start", "hystart", "cubic"):
            assert expected in names

    def test_create_by_name(self):
        _, ctx = make_ctx()
        cc = create_cc("reno", ctx)
        assert isinstance(cc, RenoCC)

    def test_create_with_kwargs(self):
        _, ctx = make_ctx()
        cc = create_cc("limited_slow_start", ctx, max_ssthresh_segments=42)
        assert cc.max_ssthresh == 42

    def test_factory_binding(self):
        _, ctx = make_ctx()
        factory = cc_factory("cubic")
        assert isinstance(factory(ctx), CubicCC)

    def test_unknown_name_rejected(self):
        _, ctx = make_ctx()
        with pytest.raises(ConfigurationError):
            create_cc("bogus", ctx)
        with pytest.raises(ConfigurationError):
            cc_factory("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_cc("reno", RenoCC)

    def test_overwrite_allowed_when_requested(self):
        register_cc("reno", RenoCC, overwrite=True)
        assert "reno" in available_algorithms()

    def test_restricted_registered_after_core_import(self):
        import repro.core  # noqa: F401 - registration side effect
        assert "restricted" in available_algorithms()
