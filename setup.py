"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose pip/setuptools cannot build PEP 660 editable
wheels (no ``wheel`` package available).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
