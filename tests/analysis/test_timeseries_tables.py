"""Tests for time-series helpers and the table renderer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Table,
    cumulative_count_series,
    downsample,
    resample_step,
    series_mean,
)
from repro.errors import ExperimentError


class TestResampleStep:
    def test_step_semantics(self):
        out = resample_step([1.0, 2.0], [10.0, 20.0], [0.5, 1.0, 1.5, 2.5])
        assert list(out) == [0.0, 10.0, 10.0, 20.0]

    def test_custom_left_value(self):
        out = resample_step([1.0], [5.0], [0.0], left=-1.0)
        assert list(out) == [-1.0]

    def test_empty_series(self):
        out = resample_step([], [], [0.0, 1.0], left=3.0)
        assert list(out) == [3.0, 3.0]

    def test_length_mismatch(self):
        with pytest.raises(ExperimentError):
            resample_step([0.0], [], [0.0])


class TestCumulativeCountSeries:
    def test_matches_manual_count(self):
        out = cumulative_count_series([0.5, 1.5, 1.5, 3.0], [0.0, 1.0, 2.0, 3.0, 4.0])
        assert list(out) == [0.0, 1.0, 3.0, 4.0, 4.0]

    @given(st.lists(st.floats(min_value=0, max_value=10), max_size=30))
    def test_final_value_is_total(self, events):
        out = cumulative_count_series(events, [10.0])
        assert out[-1] == len(events)


class TestSeriesMean:
    def test_constant_series(self):
        assert series_mean([0.0, 1.0], [5.0, 5.0], 0.0, 1.0) == pytest.approx(5.0)

    def test_step_series(self):
        # 0 for the first half, 10 for the second
        mean = series_mean([0.0, 5.0], [0.0, 10.0], 0.0, 10.0)
        assert mean == pytest.approx(5.0, abs=0.1)

    def test_invalid_window(self):
        with pytest.raises(ExperimentError):
            series_mean([0.0], [1.0], 1.0, 1.0)

    def test_empty(self):
        assert series_mean([], []) == 0.0


class TestDownsample:
    def test_no_change_when_short(self):
        t, v = downsample([0, 1, 2], [1, 2, 3], max_points=10)
        assert len(t) == 3

    def test_reduces_long_series(self):
        t, v = downsample(np.arange(1000), np.arange(1000), max_points=100)
        assert len(t) <= 100
        assert len(t) == len(v)

    def test_invalid_max_points(self):
        with pytest.raises(ExperimentError):
            downsample([0, 1], [0, 1], max_points=1)


class TestTable:
    def test_render_contains_header_and_rows(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("alpha", 1.5)
        table.add_row("beta", 2)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text and "beta" in text
        assert "1.500" in text

    def test_markdown_rendering(self):
        table = Table(["a", "b"])
        table.add_row(1, 2)
        md = table.render_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in md

    def test_named_cells(self):
        table = Table(["x", "y"])
        table.add_row(y=2, x=1)
        assert table.rows[0] == ["1", "2"]

    def test_column_access(self):
        table = Table(["x", "y"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("y") == ["2", "4"]
        with pytest.raises(ExperimentError):
            table.column("z")

    def test_wrong_cell_count_rejected(self):
        table = Table(["x", "y"])
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_unknown_named_column_rejected(self):
        table = Table(["x"])
        with pytest.raises(ExperimentError):
            table.add_row(z=1)

    def test_mixed_cells_rejected(self):
        table = Table(["x", "y"])
        with pytest.raises(ExperimentError):
            table.add_row(1, y=2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ExperimentError):
            Table([])

    def test_len(self):
        table = Table(["x"])
        table.add_row(1)
        assert len(table) == 1
