"""Tests for the restricted slow-start configuration."""

from __future__ import annotations

import pytest

from repro.control import PAPER_RULE, PIDGains
from repro.core import DEFAULT_ULTIMATE, RestrictedSlowStartConfig, default_gains
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_setpoint(self):
        assert RestrictedSlowStartConfig().setpoint_fraction == 0.9

    def test_default_gains_resolved(self):
        cfg = RestrictedSlowStartConfig()
        gains = cfg.resolved_gains()
        assert gains.kp > 0

    def test_explicit_gains_passed_through(self):
        gains = PIDGains(kp=0.5)
        cfg = RestrictedSlowStartConfig(gains=gains)
        assert cfg.resolved_gains() is gains

    def test_growth_never_more_aggressive_than_standard(self):
        assert RestrictedSlowStartConfig().max_increment_per_ack == 1.0

    def test_trimming_allowed_by_default(self):
        assert RestrictedSlowStartConfig().min_increment_per_ack < 0.0

    def test_guard_enabled_by_default(self):
        assert RestrictedSlowStartConfig().hard_setpoint_guard


class TestDefaultGains:
    def test_gains_follow_paper_rule(self):
        gains = default_gains(rtt=0.060)
        # Kp = 0.33*Kc, Ti = 0.5*Tc = rtt, Td = 0.33*Tc
        assert gains.kp == pytest.approx(0.33 * DEFAULT_ULTIMATE.kc)
        assert gains.ti == pytest.approx(0.060)
        assert gains.td == pytest.approx(0.33 * 0.12, rel=1e-6)

    def test_gains_scale_with_rtt(self):
        short = default_gains(rtt=0.010)
        long = default_gains(rtt=0.100)
        assert short.ti < long.ti
        assert short.kp == pytest.approx(long.kp)

    def test_alternate_rule(self):
        classic = default_gains(rtt=0.06, rule="zn_classic_pid")
        paper = default_gains(rtt=0.06, rule=PAPER_RULE)
        assert classic.kp > paper.kp

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ConfigurationError):
            default_gains(rtt=0.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(setpoint_fraction=0.0),
        dict(setpoint_fraction=1.5),
        dict(max_increment_per_ack=0.0),
        dict(min_increment_per_ack=2.0, max_increment_per_ack=1.0),
        dict(derivative_filter_tau=-1.0),
        dict(min_control_interval=-0.1),
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RestrictedSlowStartConfig(**kwargs)

    def test_replace(self):
        cfg = RestrictedSlowStartConfig()
        other = cfg.replace(setpoint_fraction=0.8)
        assert other.setpoint_fraction == 0.8
        assert cfg.setpoint_fraction == 0.9

    def test_for_path_builds_gains(self):
        cfg = RestrictedSlowStartConfig.for_path(rtt=0.03)
        assert cfg.gains is not None
        assert cfg.gains.ti == pytest.approx(0.03)

    def test_for_path_forwards_overrides(self):
        cfg = RestrictedSlowStartConfig.for_path(rtt=0.03, setpoint_fraction=0.7)
        assert cfg.setpoint_fraction == 0.7

    def test_frozen(self):
        cfg = RestrictedSlowStartConfig()
        with pytest.raises(Exception):
            cfg.setpoint_fraction = 0.5  # type: ignore[misc]
