"""Argument handling for ``repro lint`` (also ``python -m repro.lint``)."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..errors import ReproError
from .baseline import Baseline, load_baseline, write_baseline
from .engine import LintReport, lint_paths
from .specaudit import audit_specs

__all__ = ["add_lint_arguments", "run_lint", "main"]

#: Default lint target when no paths are given.
DEFAULT_PATHS = ("src",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json includes suppressed findings and is "
             "what CI archives)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings; matched findings "
             "are suppressed, stale entries are reported so the file only "
             "ratchets down")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from the current active findings "
             "(requires --baseline)")
    parser.add_argument(
        "--specs", action="store_true",
        help="audit the spec registry (frozen, JSON round-trip, unknown-"
             "field rejection, stable cache_key) instead of linting paths")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.specs:
        if args.paths or args.baseline or args.update_baseline:
            print("error: --specs audits the in-process spec registry; "
                  "paths and baselines do not apply", file=sys.stderr)
            return 2
        report = LintReport(findings=audit_specs(), files_checked=0)
        if args.format == "json":
            print(report.to_json())
        else:
            for finding in report.findings:
                print(finding.render())
            print(f"spec audit: {len(report.findings)} finding(s)")
        return report.exit_code
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2
    baseline: Baseline | None = None
    if args.baseline and not args.update_baseline:
        baseline = load_baseline(args.baseline)
    paths: Sequence[str] = args.paths or list(DEFAULT_PATHS)
    report = lint_paths(paths, baseline=baseline)
    if args.update_baseline:
        path = write_baseline(report.findings, args.baseline)
        print(f"wrote {len(report.findings)} finding(s) to baseline {path}")
        return 0
    print(report.to_json() if args.format == "json" else report.render_text())
    return report.exit_code


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & spec-hygiene static analysis")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via repro CLI
    sys.exit(main())
