"""Fluid fast-path backend with the packet backend's result interface.

:func:`run_single_flow_fluid` mirrors the signature of
:func:`repro.experiments.runner.run_single_flow` and returns the same
:class:`~repro.experiments.runner.SingleFlowResult` dataclass, so renderers,
sweeps, parallel batches and JSON persistence work identically on both
backends.  Quantities the fluid abstraction does not model (RTO timeouts,
per-segment retransmission detail) are reported as zero; the cross-validation
harness (:mod:`repro.fluid.validate`) documents which fields are comparable
and within what tolerance.
"""

from __future__ import annotations

import numpy as np

from ..core.config import RestrictedSlowStartConfig
from ..errors import ExperimentError
from ..tcp.state import LocalCongestionPolicy
from ..workloads.scenarios import PathConfig
from .model import FluidFlowModel, FluidRunResult, fluid_growth_rule

__all__ = ["run_single_flow_fluid", "FLUID_BACKEND"]

#: Backend name used throughout the experiment harness.
FLUID_BACKEND = "fluid"


def run_single_flow_fluid(
    cc: str = "reno",
    config: PathConfig | None = None,
    duration: float = 25.0,
    seed: int = 1,
    total_bytes: int | None = None,
    cc_kwargs: dict | None = None,
    rss_config: RestrictedSlowStartConfig | None = None,
    local_congestion_policy: LocalCongestionPolicy | None = None,
    trace_interval: float = 0.05,
    run_past_duration_until_complete: bool = False,
):
    """Fluid-model equivalent of :func:`repro.experiments.runner.run_single_flow`.

    ``trace_interval`` is accepted for signature parity; the fluid series
    are sampled once per round trip (the model's native resolution).
    """
    from ..experiments.runner import FlowResult, SingleFlowResult

    if duration <= 0:
        raise ExperimentError("duration must be positive")
    cfg = config if config is not None else PathConfig()
    options = cfg.tcp_options()
    if local_congestion_policy is not None:
        options = options.replace(local_congestion_policy=local_congestion_policy)

    rule = fluid_growth_rule(cc, cfg, cc_kwargs=cc_kwargs, rss_config=rss_config)
    model = FluidFlowModel(cfg, rule, options=options, seed=seed,
                           total_bytes=total_bytes)
    raw: FluidRunResult = model.run(
        duration, run_past_duration_until_complete=run_past_duration_until_complete)

    flow = FlowResult(
        name="flow0",
        algorithm=cc,
        duration=raw.duration,
        bytes_acked=raw.bytes_acked,
        goodput_bps=raw.goodput_bps,
        send_stalls=raw.send_stalls,
        stall_times=list(raw.stall_times),
        congestion_signals=raw.congestion_signals,
        timeouts=0,
        fast_retransmits=raw.fast_retransmits,
        pkts_retrans=raw.pkts_retrans,
        other_reductions=raw.other_reductions,
        max_cwnd_bytes=int(raw.max_cwnd * cfg.mss),
        final_cwnd_segments=raw.final_cwnd,
        final_ssthresh_segments=raw.final_ssthresh,
        smoothed_rtt=cfg.rtt,
        min_rtt=cfg.rtt,
        completion_time=raw.completion_time,
        web100={
            "backend": FLUID_BACKEND,
            "ThruBytesAcked": raw.bytes_acked,
            "SendStall": raw.send_stalls,
            "OtherReductions": raw.other_reductions,
            "CongestionSignals": raw.congestion_signals,
            "FastRetran": raw.fast_retransmits,
            "MaxCwnd": int(raw.max_cwnd * cfg.mss),
        },
    )
    return SingleFlowResult(
        config=cfg,
        duration=raw.duration,
        seed=seed,
        flow=flow,
        ifq_times=np.asarray(raw.times, dtype=float),
        ifq_occupancy=np.asarray(raw.ifq_occupancy, dtype=float),
        ifq_peak=int(round(raw.ifq_peak)),
        # each modelled stall is (at least) one rejected enqueue; reporting
        # it here keeps fluid sweep rows from reading as "no drops" at
        # operating points where the packet engine rejects packets
        ifq_drops=raw.send_stalls,
        bottleneck_drops=raw.pkts_retrans,
        cwnd_times=np.asarray(raw.times, dtype=float),
        cwnd_segments=np.asarray(raw.cwnd_segments, dtype=float),
        acked_times=np.asarray(raw.times, dtype=float),
        acked_bytes=np.asarray(raw.acked_bytes, dtype=float),
        events_processed=raw.steps,
        backend=FLUID_BACKEND,
    )
