"""Cross-engine parity of the unified metrics plane.

All three engines — the event-driven packet simulator, the scalar per-RTT
fluid model and the vectorized population model — emit canonical
:class:`~repro.metrics.FlowRecord` lists and a
:class:`~repro.metrics.PopulationSummary` built by the same accumulator.
This suite pins the contract down:

* packet vs fluid on the fairness grid: population-level summary figures
  agree within the documented cross-validation tolerances (aggregate
  goodput 25% rtol, Jain index ±0.05);
* scalar vs vector fluid on one mix: summaries match to float noise;
* streamed vs materialised churn on one vector population: identical
  summaries (streaming changes memory behaviour, never the statistics).
"""

from __future__ import annotations

import pytest

from repro.fluid import FluidFlowInput, FluidPopulationModel, fluid_growth_rule
from repro.fluid.backend import execute_fluid_multi_flow
from repro.metrics import PopulationSummary
from repro.spec import MultiFlowSpec, dumbbell, execute
from repro.testing import SMALL_PATH

#: The fairness-grid mixes and tolerances of the fluid validation gate.
GRID = [
    ("homogeneous_reno",
     lambda: dumbbell(SMALL_PATH, 2, ccs="reno", start_times=(0.0, 0.1))),
    ("reno_vs_restricted",
     lambda: dumbbell(SMALL_PATH, 2, ccs=("reno", "restricted"),
                      start_times=(0.0, 0.1))),
    ("staggered_starts",
     lambda: dumbbell(SMALL_PATH, 2, ccs="reno", start_times=(0.0, 1.0))),
]
AGGREGATE_RTOL = 0.25
JAIN_ATOL = 0.05
DURATION = 20.0


class TestPacketVsFluid:
    @pytest.fixture(scope="class", params=[label for label, _ in GRID])
    def pair(self, request):
        scenario = dict(GRID)[request.param]()
        results = {}
        for backend in ("packet", "fluid"):
            spec = MultiFlowSpec(scenario=scenario, duration=DURATION,
                                 seed=2, backend=backend)
            results[backend] = execute(spec)
        return results

    def test_both_backends_emit_the_metrics_plane(self, pair):
        for result in pair.values():
            assert isinstance(result.summary, PopulationSummary)
            assert len(result.records) == len(result.flows)
            assert result.summary.n_flows == len(result.flows)
            assert result.summary.horizon == DURATION

    def test_records_mirror_the_flows(self, pair):
        for result in pair.values():
            by_id = {r.flow_id: r for r in result.records}
            for flow in result.flows:
                record = by_id[flow.name]
                assert record.cc == flow.algorithm
                assert record.goodput_bps == pytest.approx(flow.goodput_bps)
                assert record.bytes_acked == flow.bytes_acked

    def test_summary_agrees_with_result_aggregates(self, pair):
        for result in pair.values():
            assert result.summary.aggregate_goodput_bps == pytest.approx(
                result.aggregate_goodput_bps, rel=1e-9)
            assert result.summary.jain_index == pytest.approx(
                result.jain_index, rel=1e-9)

    def test_aggregate_goodput_within_tolerance(self, pair):
        packet = pair["packet"].summary
        fluid = pair["fluid"].summary
        assert fluid.aggregate_goodput_bps == pytest.approx(
            packet.aggregate_goodput_bps, rel=AGGREGATE_RTOL)

    def test_jain_within_tolerance(self, pair):
        packet = pair["packet"].summary
        fluid = pair["fluid"].summary
        assert abs(fluid.jain_index - packet.jain_index) <= JAIN_ATOL

    def test_concurrency_grids_agree(self, pair):
        # both backends saw the same declared start times on the same grid
        packet = pair["packet"].summary
        fluid = pair["fluid"].summary
        assert packet.grid_times == fluid.grid_times
        assert packet.peak_concurrency == fluid.peak_concurrency == 2


class TestScalarVsVector:
    def test_summaries_match(self):
        spec = MultiFlowSpec(
            scenario=dumbbell(SMALL_PATH, 2, ccs=("reno", "restricted"),
                              start_times=(0.0, 0.5)),
            duration=8.0, seed=2, backend="fluid")
        scalar = execute_fluid_multi_flow(spec, engine="scalar").summary
        vector = execute_fluid_multi_flow(spec, engine="vector").summary
        assert scalar.n_flows == vector.n_flows
        assert scalar.n_completed == vector.n_completed
        assert scalar.aggregate_goodput_bps == pytest.approx(
            vector.aggregate_goodput_bps, rel=1e-6)
        assert scalar.jain_index == pytest.approx(vector.jain_index, rel=1e-6)
        assert scalar.concurrent_flows == vector.concurrent_flows
        assert scalar.by_cc.keys() == vector.by_cc.keys()


class TestStreamedVsMaterialized:
    def _inputs(self):
        rule = fluid_growth_rule("reno", SMALL_PATH)
        declared = [
            FluidFlowInput(name=f"flow{i}:reno", cc="reno", rule=rule, ifq=i)
            for i in range(2)
        ]
        churned = [
            FluidFlowInput(name=f"churn{i}:reno", cc="reno", rule=rule,
                           ifq=i % 2, start_time=0.3 * i,
                           total_bytes=200_000 * (1 + i % 3),
                           quantize_start=True)
            for i in range(12)
        ]
        return declared + churned

    @staticmethod
    def _assert_same(a, b, path=""):
        # streamed folds in departure order, materialised in declaration
        # order, so float sums may differ in the last bits — nothing else may
        assert type(a) is type(b), path
        if isinstance(a, dict):
            assert a.keys() == b.keys(), path
            for k in a:
                TestStreamedVsMaterialized._assert_same(a[k], b[k],
                                                        f"{path}.{k}")
        elif isinstance(a, list):
            assert len(a) == len(b), path
            for i, (x, y) in enumerate(zip(a, b)):
                TestStreamedVsMaterialized._assert_same(x, y, f"{path}[{i}]")
        elif isinstance(a, float):
            assert a == pytest.approx(b, rel=1e-9), path
        else:
            assert a == b, path

    def test_streaming_changes_memory_not_statistics(self):
        streamed = FluidPopulationModel(
            SMALL_PATH, self._inputs(), seed=2, stream_churned=True).run(6.0)
        materialized = FluidPopulationModel(
            SMALL_PATH, self._inputs(), seed=2, stream_churned=False).run(6.0)
        self._assert_same(streamed.summary.to_dict(),
                          materialized.summary.to_dict())
        # the streamed run materialises declared outcomes only
        assert len(streamed.flows) == 2
        assert len(materialized.flows) == 14
        assert len(streamed.records) == 2
        assert streamed.summary.by_class["churn"].flows == 12
