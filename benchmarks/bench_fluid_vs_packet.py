"""E12 — fluid fast path vs packet engine.

Not a paper artefact: demonstrates the two-backend architecture.  The fluid
backend must be (a) at least ~100x faster than the packet engine on the
default 25 s single-flow run, and (b) in agreement with it on the quantities
the experiments report (goodput, stall behaviour, IFQ peak) across the
cross-validation grid — see :mod:`repro.fluid.validate` for the documented
tolerances.
"""

from __future__ import annotations


from repro.experiments import run_single_flow
from repro.fluid import cross_validate
from repro.obs.clock import wall_clock

from .conftest import emit, scaled

#: Speedup the fluid backend must deliver on the default 25 s run.
REQUIRED_SPEEDUP = 100.0


def _paired_runs(duration: float, seed: int = 1):
    rows = []
    for cc in ("reno", "restricted"):
        t0 = wall_clock()
        packet = run_single_flow(cc, duration=duration, seed=seed, backend="packet")
        packet_wall = wall_clock() - t0
        t0 = wall_clock()
        fluid = run_single_flow(cc, duration=duration, seed=seed, backend="fluid")
        fluid_wall = wall_clock() - t0
        rows.append((cc, packet, packet_wall, fluid, fluid_wall))
    return rows


def test_fluid_speedup_on_default_run(benchmark, bench_once):
    """Default 25 s single-flow run: fluid must be >=100x faster."""
    duration = scaled(25.0)
    results = bench_once(_paired_runs, duration)
    lines = []
    worst_speedup = float("inf")
    for cc, packet, packet_wall, fluid, fluid_wall in results:
        speedup = packet_wall / max(fluid_wall, 1e-9)
        worst_speedup = min(worst_speedup, speedup)
        err = abs(fluid.goodput_bps - packet.goodput_bps) / packet.goodput_bps
        lines.append(
            f"{cc:12s} packet {packet.events_processed:>9,} events / {packet_wall:6.2f}s   "
            f"fluid {fluid.events_processed:>7,} steps / {fluid_wall * 1e3:7.1f}ms   "
            f"speedup {speedup:6.0f}x   goodput {fluid.goodput_bps / 1e6:6.2f} vs "
            f"{packet.goodput_bps / 1e6:6.2f} Mbit/s (err {err:5.1%})"
        )
    report = (f"E12 — fluid fast path vs packet engine ({duration:.0f} s run)\n"
              + "\n".join(lines))
    emit(benchmark, report, worst_speedup=worst_speedup)
    assert worst_speedup >= REQUIRED_SPEEDUP, (
        f"fluid backend only {worst_speedup:.0f}x faster (need {REQUIRED_SPEEDUP:.0f}x)")


def test_fluid_matches_packet_on_grid(benchmark, bench_once):
    """Cross-validation grid: both backends agree within tolerance."""
    report = bench_once(cross_validate, duration=3.0, seed=2)
    emit(benchmark, report.render(),
         points=len(report.rows),
         failures=len(report.failures()))
    assert report.ok, "\n".join(report.failures())
