"""Modern AQM queue disciplines: CoDel (RFC 8289) and DualPI2 (RFC 9332).

Both build on :class:`~repro.net.queues.PacketQueue` and both can *mark*
ECN-capable packets (rewrite ECT → CE) instead of dropping them, which is
what lets an L4S-style sender (Prague/DCTCP fractional backoff) keep the
bottleneck queue short with (near-)zero loss.

* :class:`CoDelQueue` — Controlled Delay: admission is plain tail-drop; the
  control law acts at *dequeue* time on the packet's sojourn time.  While
  the sojourn time stays above ``target`` for longer than ``interval`` the
  queue enters a dropping state and drops (or marks) head packets at a rate
  that increases with the square root of the drop count.
* :class:`DualPI2Queue` — the coupled dual-queue AQM of L4S.  A PI
  controller servos a base probability ``p'`` on queueing delay; classic
  traffic is dropped (or marked) with probability ``p'²`` while L4S traffic
  (ECT(1)) is marked with the coupled probability ``k·p'`` plus an
  immediate step mark above a shallow delay threshold.  The L4S queue gets
  strict priority at dequeue.

Accounting invariants (shared with the classic disciplines and pinned by
tests): tail rejections count as drops at enqueue; CoDel's head drops are
counted as drops *after* the packet was counted enqueued (so ``enqueued ==
dequeued + head_drops + qlen``); a marked packet is never also counted as
dropped.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from ..errors import ConfigurationError
from .packet import ECN_CE, ECN_ECT1, Packet
from .queues import PacketQueue

__all__ = ["CoDelQueue", "DualPI2Queue"]


class CoDelQueue(PacketQueue):
    """Controlled-Delay AQM (RFC 8289), with optional ECN marking.

    Parameters
    ----------
    capacity_packets, capacity_bytes:
        Physical limits; arrivals beyond them tail-drop exactly like
        :class:`DropTailQueue`.
    target:
        Acceptable standing queue delay (seconds; RFC default 5 ms).
    interval:
        Sliding window in which the sojourn time must exceed ``target``
        before the queue starts dropping (seconds; RFC default 100 ms).
    ecn:
        When True, the control law CE-marks ECN-capable packets instead of
        dropping them (non-ECN packets are still dropped).
    """

    def __init__(
        self,
        capacity_packets: Optional[int] = None,
        capacity_bytes: Optional[int] = None,
        target: float = 0.005,
        interval: float = 0.100,
        ecn: bool = False,
        clock: Callable[[], float] | None = None,
        name: str = "codel",
    ) -> None:
        if target <= 0.0:
            raise ConfigurationError("CoDel target must be > 0")
        if interval <= 0.0:
            raise ConfigurationError("CoDel interval must be > 0")
        super().__init__(capacity_packets, capacity_bytes, clock, name)
        self.target = float(target)
        self.interval = float(interval)
        self.ecn = bool(ecn)
        #: Head drops made by the control law (subset of ``stats.dropped``).
        self.head_drops = 0
        self._maxpacket = 0
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0
        self._lastcount = 0
        self._dropping = False

    # ------------------------------------------------------------------
    def _admit(self, packet: Packet) -> bool:
        if packet.size_bytes > self._maxpacket:
            self._maxpacket = packet.size_bytes
        return self._within_capacity(packet)

    def _control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(self._count)

    def _pop_head(self, now: float) -> tuple[Packet | None, bool]:
        """RFC 8289 ``dodequeue``: pop the head, judge its sojourn time."""
        if not self._queue:
            self._first_above_time = 0.0
            return None, False
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        self._count_dequeue(packet)
        sojourn = now - packet.enqueued_at
        if sojourn < self.target or self._bytes <= self._maxpacket:
            # went below target (or queue is down to one packet's worth):
            # stay out of the dropping state for at least interval
            self._first_above_time = 0.0
            return packet, False
        # repro: allow[REP003] 0.0 is an exact "not armed" sentinel, only ever assigned verbatim
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return packet, False
        return packet, now >= self._first_above_time

    def _head_drop(self, packet: Packet) -> None:
        # packet was already counted dequeued by _pop_head; the drop is
        # accounted on top so enqueued == dequeued stays the wire total and
        # head_drops lets tests separate the two drop causes
        self.head_drops += 1
        self._count_drop(packet)

    def _set_dropping(self, now: float, value: bool) -> None:
        """Switch the control-law state, tracing actual transitions."""
        if value != self._dropping and self.trace is not None:
            self.trace.record("aqm", "codel_state", time=now,
                              queue=self.name, dropping=value,
                              count=self._count)
        self._dropping = value

    def dequeue(self) -> Packet | None:
        now = self._clock()
        self.stats.observe(now, self.qlen)
        packet, ok_to_drop = self._pop_head(now)
        if packet is None:
            self._set_dropping(now, False)
            return None
        if self._dropping:
            if not ok_to_drop:
                self._set_dropping(now, False)
            else:
                while self._dropping and now >= self._drop_next:
                    self._count += 1
                    if self.ecn and self._mark(packet):
                        # marking substitutes for the drop: deliver this
                        # packet and advance the schedule
                        self._drop_next = self._control_law(self._drop_next)
                        break
                    self._head_drop(packet)
                    packet, ok_to_drop = self._pop_head(now)
                    if packet is None:
                        self._set_dropping(now, False)
                        return None
                    if not ok_to_drop:
                        self._set_dropping(now, False)
                    else:
                        self._drop_next = self._control_law(self._drop_next)
        elif ok_to_drop:
            marked = self.ecn and self._mark(packet)
            if not marked:
                self._head_drop(packet)
                packet, _ = self._pop_head(now)
            self._set_dropping(now, True)
            # start the next dropping episode faster if the last one was
            # recent and heavy (RFC 8289 count reuse)
            delta = self._count - self._lastcount
            if delta > 1 and now - self._drop_next < 16.0 * self.interval:
                self._count = delta
            else:
                self._count = 1
            self._drop_next = self._control_law(now)
            self._lastcount = self._count
        return packet


class DualPI2Queue(PacketQueue):
    """Coupled dual-queue PI2 AQM for L4S (RFC 9332).

    Traffic is split by ECN codepoint: ECT(1)/CE packets go to the L4S
    queue (strict priority at dequeue), everything else to the classic
    queue.  A PI controller updated every ``tupdate`` servos the base
    probability ``p'`` on the instantaneous queueing delay; classic packets
    are dropped — or CE-marked when ``ecn_classic`` — with probability
    ``p'²`` at admission, L4S packets are CE-marked at dequeue with the
    coupled probability ``min(1, coupling · p')`` or immediately once their
    sojourn time exceeds ``step_threshold``.

    Parameters
    ----------
    capacity_packets, capacity_bytes:
        Shared physical limits across both internal queues.
    rng:
        Required seeded ``numpy.random.Generator`` for the probabilistic
        drop/mark decisions (a ``sim.rng(...)`` stream when compiled).
        Keyword-only with no default, so the signature — not a runtime
        raise — enforces the seeded-rng contract.
    target:
        Classic-queue delay target for the PI controller (seconds).
    tupdate:
        PI update period (seconds).
    alpha, beta:
        Integral and proportional PI gains (per second of delay error).
    coupling:
        Coupling factor ``k`` between classic and L4S probabilities.
    step_threshold:
        L4S sojourn time above which packets are marked unconditionally
        (seconds); gives sub-RTT feedback during slow start.
    ecn:
        When False the L4S path is disabled and every packet is treated as
        classic (plain PI2 behaviour).
    ecn_classic:
        When True, classic ECT(0) packets are marked rather than dropped.
    """

    def __init__(
        self,
        capacity_packets: Optional[int] = None,
        capacity_bytes: Optional[int] = None,
        *,
        rng: np.random.Generator,
        target: float = 0.015,
        tupdate: float = 0.016,
        alpha: float = 0.16,
        beta: float = 3.2,
        coupling: float = 2.0,
        step_threshold: float = 0.001,
        ecn: bool = True,
        ecn_classic: bool = False,
        clock: Callable[[], float] | None = None,
        name: str = "dualpi2",
    ) -> None:
        if target <= 0.0 or tupdate <= 0.0:
            raise ConfigurationError("DualPI2 target and tupdate must be > 0")
        if alpha < 0.0 or beta < 0.0:
            raise ConfigurationError("DualPI2 gains must be >= 0")
        if coupling <= 0.0:
            raise ConfigurationError("DualPI2 coupling must be > 0")
        if step_threshold < 0.0:
            raise ConfigurationError("DualPI2 step_threshold must be >= 0")
        super().__init__(capacity_packets, capacity_bytes, clock, name)
        self.rng = rng
        self.target = float(target)
        self.tupdate = float(tupdate)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.coupling = float(coupling)
        self.step_threshold = float(step_threshold)
        self.ecn = bool(ecn)
        self.ecn_classic = bool(ecn_classic)
        #: L4S CE marks / classic CE marks / classic probabilistic drops.
        self.l4s_marks = 0
        self.classic_marks = 0
        self.classic_drops = 0
        self._lq: Deque[Packet] = deque()
        self._p = 0.0  # base probability p'
        self._prev_qdelay = 0.0
        self._t_update: float | None = None

    # ------------------------------------------------------------------
    # occupancy spans both internal queues
    # ------------------------------------------------------------------
    @property
    def qlen(self) -> int:
        return len(self._queue) + len(self._lq)

    @property
    def is_empty(self) -> bool:
        return not self._queue and not self._lq

    @property
    def base_probability(self) -> float:
        """Current PI base probability ``p'`` (diagnostics)."""
        return self._p

    def peek(self) -> Packet | None:
        if self._lq:
            return self._lq[0]
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        self._queue.clear()
        self._lq.clear()
        self._bytes = 0

    # ------------------------------------------------------------------
    # PI controller
    # ------------------------------------------------------------------
    def _qdelay(self, now: float) -> float:
        """Instantaneous queueing delay: sojourn time of the oldest head."""
        delay = 0.0
        if self._queue:
            delay = now - self._queue[0].enqueued_at
        if self._lq:
            delay = max(delay, now - self._lq[0].enqueued_at)
        return delay

    def _maybe_update(self, now: float) -> None:
        if self._t_update is None:
            self._t_update = now + self.tupdate
            return
        while now >= self._t_update:
            qdelay = self._qdelay(self._t_update)
            self._p += (self.alpha * (qdelay - self.target) * self.tupdate
                        + self.beta * (qdelay - self._prev_qdelay))
            self._p = min(max(self._p, 0.0), 1.0)
            self._prev_qdelay = qdelay
            if self.trace is not None:
                self.trace.record("aqm", "pi_update", time=self._t_update,
                                  queue=self.name, p=self._p, qdelay=qdelay)
            self._t_update += self.tupdate

    def _is_l4s(self, packet: Packet) -> bool:
        return self.ecn and packet.ecn in (ECN_ECT1, ECN_CE)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        now = self._clock()
        self.stats.observe(now, self.qlen)
        self._maybe_update(now)
        if not self._within_capacity(packet):
            self._count_drop(packet)
            return False
        if self._is_l4s(packet):
            packet.enqueued_at = now
            self._lq.append(packet)
        else:
            p_classic = self._p * self._p
            if p_classic > 0.0 and self.rng.random() < p_classic:
                if self.ecn_classic and self._mark(packet):
                    self.classic_marks += 1
                else:
                    self.classic_drops += 1
                    self._count_drop(packet)
                    return False
            packet.enqueued_at = now
            self._queue.append(packet)
        self._bytes += packet.size_bytes
        self._count_enqueue(packet)
        return True

    def dequeue(self) -> Packet | None:
        if self.is_empty:
            return None
        now = self._clock()
        self.stats.observe(now, self.qlen)
        self._maybe_update(now)
        if self._lq:
            packet = self._lq.popleft()
            self._bytes -= packet.size_bytes
            self._count_dequeue(packet)
            if packet.ecn != ECN_CE:
                sojourn = now - packet.enqueued_at
                p_l4s = min(1.0, self.coupling * self._p)
                if sojourn > self.step_threshold or (
                        p_l4s > 0.0 and self.rng.random() < p_l4s):
                    if self._mark(packet):
                        self.l4s_marks += 1
            return packet
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        self._count_dequeue(packet)
        return packet
