"""Post-processing: metrics, time-series helpers, report tables."""

from .metrics import (
    goodput_bps,
    improvement_percent,
    jain_fairness_index,
    stall_rate,
    time_to_bytes,
    utilization,
)
from .tables import Table, kv_table
from .timeseries import cumulative_count_series, downsample, resample_step, series_mean

__all__ = [
    "goodput_bps",
    "improvement_percent",
    "jain_fairness_index",
    "stall_rate",
    "time_to_bytes",
    "utilization",
    "Table",
    "kv_table",
    "resample_step",
    "cumulative_count_series",
    "series_mean",
    "downsample",
]
