"""The single entry point that runs any declarative spec.

:func:`execute` dispatches on the spec's type: a :class:`RunSpec` goes
straight to its registered backend, the composite specs fan out into
:class:`RunSpec` derivations (optionally across a process pool via
``max_workers``).  Every result carries its originating spec on a ``spec``
attribute — the provenance record that result persistence and cache keying
build on.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any

from ..errors import ExperimentError
from ..obs.telemetry import (
    RunTelemetry,
    aggregate,
    memory_tracking_enabled,
    telemetry_session,
)
from .backends import backend_runner
from .scenario import ScenarioSpec
from .specs import ComparisonSpec, MultiFlowSpec, RunSpec, SpecBase, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..campaign.store import ResultStore

__all__ = ["execute"]


def execute(spec: SpecBase, *, max_workers: int | None = None,
            store: "ResultStore | None" = None) -> Any:
    """Run ``spec`` and return its result.

    * :class:`RunSpec` → ``SingleFlowResult`` (via the backend registry);
    * :class:`ComparisonSpec` → ``ComparisonResult``;
    * :class:`MultiFlowSpec` → ``MultiFlowResult``;
    * :class:`SweepSpec` → ``SweepResult``;
    * a bare :class:`ScenarioSpec` → ``MultiFlowResult`` (wrapped in a
      default ``MultiFlowSpec`` carrying the scenario).

    ``max_workers`` controls process fan-out for the composite specs
    (``None`` picks a conservative default, 0/1 run serially in-process);
    workers pickle exactly one spec each.

    ``store`` (a :class:`repro.campaign.ResultStore`) records every
    executed spec-carrying result write-through: the composite *and* its
    atomic components (one per comparison algorithm / sweep point), so
    campaigns — which address work at the flattened per-run granularity —
    hit them later.
    """
    if isinstance(spec, ScenarioSpec):
        return execute(MultiFlowSpec(scenario=spec), max_workers=max_workers,
                       store=store)
    if isinstance(spec, RunSpec):
        return _stored(store, _execute_run(spec))
    if isinstance(spec, ComparisonSpec):
        return _execute_comparison(spec, max_workers=max_workers, store=store)
    if isinstance(spec, MultiFlowSpec):
        with _instrumented() as telemetry:
            if spec.backend == "fluid":
                from ..fluid.backend import execute_fluid_multi_flow

                result = execute_fluid_multi_flow(spec)
            else:
                from ..experiments.runner import execute_multi_flow_spec

                result = execute_multi_flow_spec(spec)
        result.spec = spec
        result.telemetry = telemetry
        return _stored(store, result)
    if isinstance(spec, SweepSpec):
        from ..experiments.sweeps import execute_sweep_spec

        result = execute_sweep_spec(spec, max_workers=max_workers, store=store)
        result.spec = spec
        return _stored(store, result)
    raise ExperimentError(
        f"cannot execute {type(spec).__name__}; expected one of "
        "RunSpec, ComparisonSpec, MultiFlowSpec, SweepSpec, ScenarioSpec")


def _stored(store: "ResultStore | None", result: Any) -> Any:
    if store is not None:
        telemetry = getattr(result, "telemetry", None)
        if telemetry is not None:
            # The persist span lands on the live result only: the stored
            # document is serialized *inside* the span, so it cannot carry
            # its own persistence cost.
            with telemetry.span("persist"):
                store.put(result)
        else:
            store.put(result)
    return result


@contextlib.contextmanager
def _instrumented():
    """Run a backend under a fresh :class:`RunTelemetry` session.

    Yields the telemetry; the engines report spans (compile / simulate /
    summarize) and counters into it via the ambient-session helpers in
    :mod:`repro.obs.telemetry`, so no backend signature changes.
    """
    telemetry = RunTelemetry(track_memory=memory_tracking_enabled())
    telemetry.begin_memory_tracking()
    try:
        with telemetry_session(telemetry):
            yield telemetry
    finally:
        telemetry.end_memory_tracking()


def _execute_run(spec: RunSpec) -> Any:
    with _instrumented() as telemetry:
        result = backend_runner(spec.backend)(spec)
    result.spec = spec
    result.telemetry = telemetry
    return result


def _execute_comparison(spec: ComparisonSpec, *,
                        max_workers: int | None = None,
                        store: "ResultStore | None" = None) -> Any:
    from ..experiments.runner import ComparisonResult

    run_specs = spec.run_specs()
    if max_workers is not None and max_workers > 1 and len(run_specs) > 1:
        from ..experiments.parallel import map_specs

        results = map_specs(list(run_specs.values()), max_workers=max_workers)
        runs = dict(zip(run_specs, results))
    else:
        runs = {cc: _execute_run(run_spec) for cc, run_spec in run_specs.items()}
    if store is not None:
        for child in runs.values():
            store.put(child)
    result = ComparisonResult(baseline=spec.baseline, runs=runs)
    result.spec = spec
    result.telemetry = aggregate(runs.values())
    return _stored(store, result)
