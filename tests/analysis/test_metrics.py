"""Tests for experiment metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    goodput_bps,
    improvement_percent,
    jain_fairness_index,
    stall_rate,
    time_to_bytes,
    utilization,
)
from repro.errors import ExperimentError


class TestGoodput:
    def test_basic(self):
        assert goodput_bps(1_000_000, 8.0) == pytest.approx(1e6)

    def test_zero_duration_rejected(self):
        with pytest.raises(ExperimentError):
            goodput_bps(1000, 0.0)


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_flow_is_fair(self):
        assert jain_fairness_index([42.0]) == pytest.approx(1.0)

    def test_total_starvation_lower_bound(self):
        # one flow gets everything among n flows -> index = 1/n
        assert jain_fairness_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            jain_fairness_index([])

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            jain_fairness_index([1.0, -1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=16))
    def test_bounds_property(self, values):
        index = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


class TestUtilization:
    def test_half_utilized(self):
        assert utilization(50e6, 100e6) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ExperimentError):
            utilization(1.0, 0.0)


class TestImprovement:
    def test_forty_percent(self):
        assert improvement_percent(100.0, 140.0) == pytest.approx(40.0)

    def test_regression_is_negative(self):
        assert improvement_percent(100.0, 80.0) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            improvement_percent(0.0, 10.0)


class TestTimeToBytes:
    def test_interpolates(self):
        times = [0.0, 1.0, 2.0]
        cumulative = [0.0, 100.0, 300.0]
        assert time_to_bytes(times, cumulative, 200.0) == pytest.approx(1.5)

    def test_target_never_reached(self):
        assert time_to_bytes([0, 1], [0, 10], 100) is None

    def test_target_at_first_sample(self):
        assert time_to_bytes([2.0, 3.0], [50.0, 80.0], 10.0) == 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            time_to_bytes([0, 1], [0], 5)

    def test_empty_series(self):
        assert time_to_bytes([], [], 5) is None


class TestStallRate:
    def test_rate(self):
        assert stall_rate(5, 25.0) == pytest.approx(0.2)

    def test_invalid_duration(self):
        with pytest.raises(ExperimentError):
            stall_rate(1, 0.0)
