"""Restricted slow-start — the paper's contribution.

Standard slow-start grows the congestion window by one segment per
acknowledged segment regardless of the state of the sending host, which on
large bandwidth-delay paths overruns the host's interface queue (IFQ) and
triggers send-stalls that Linux treats as congestion.  Restricted slow-start
replaces the *growth rule of the slow-start phase only* with a PID
controller:

* **process variable** — the current IFQ occupancy (normalised by the queue
  capacity);
* **set point** — 90 % of the maximum IFQ size (``setpoint_fraction``);
* **output** — the window increment granted per acknowledged segment,
  saturated to ``[0, 1]`` so the algorithm is never more aggressive than
  standard slow-start.

While the queue is nearly empty the error is large, the controller output
saturates at one segment per ACK and growth is exactly exponential; as the
per-round ACK bursts begin to fill the IFQ the proportional and derivative
terms cut the increment so the occupancy settles at the set point instead of
overflowing.  The congestion-avoidance phase, loss recovery and RTO handling
are untouched (inherited from Reno/NewReno), exactly as in the paper.

The gains come from Ziegler–Nichols ultimate-gain tuning with the paper's
modified constants (see :mod:`repro.core.config` and
:mod:`repro.core.tuning`).
"""

from __future__ import annotations

from ..control.pid import PIDController
from ..tcp.cc.base import CCContext
from ..tcp.cc.registry import register_cc
from ..tcp.cc.reno import RenoCC
from .config import RestrictedSlowStartConfig

__all__ = ["RestrictedSlowStart"]


class RestrictedSlowStart(RenoCC):
    """PID-restricted slow-start on top of Reno congestion avoidance."""

    name = "restricted"

    def __init__(self, ctx: CCContext, config: RestrictedSlowStartConfig | None = None) -> None:
        super().__init__(ctx)
        self.config = config if config is not None else RestrictedSlowStartConfig()
        gains = self.config.resolved_gains()
        self.pid = PIDController(
            gains,
            setpoint=self.config.setpoint_fraction,
            output_min=self.config.min_increment_per_ack,
            output_max=self.config.max_increment_per_ack,
            derivative_filter_tau=self.config.derivative_filter_tau,
        )
        self._last_control_time: float | None = None
        #: Number of controller evaluations (diagnostics / tests).
        self.controller_invocations = 0
        #: Total window growth granted by the controller, in segments.
        self.increments_granted = 0.0
        #: Number of ACKs for which the controller withheld growth entirely.
        self.increments_withheld = 0

    # ------------------------------------------------------------------
    # slow-start growth rule (the contribution)
    # ------------------------------------------------------------------
    def _slow_start(self, acked_segments: float) -> None:
        qlen, capacity = self.ctx.ifq_state()
        if capacity is None or capacity <= 0:
            # Nothing to regulate against; behave like standard slow-start
            # (or freeze growth, if the configuration says so).
            if self.config.fallback_to_standard_when_unbounded:
                super()._slow_start(acked_segments)
            return

        now = self.ctx.now
        if self._last_control_time is None:
            dt = 1e-3
        else:
            dt = now - self._last_control_time
            if dt <= 0.0:
                dt = 1e-6
            elif dt < self.config.min_control_interval:
                # Not yet time for a new control decision; no growth this ACK.
                return
        self._last_control_time = now

        occupancy = qlen / capacity
        output = self.pid.update(occupancy, dt)
        self.controller_invocations += 1
        if self.config.hard_setpoint_guard and occupancy >= self.config.setpoint_fraction:
            # Protect the headroom above the set point: growth is never
            # granted while the queue already sits at/above it (the PID may
            # still ask for a trim, which is honoured below).
            output = min(output, 0.0)
        increment = output * acked_segments
        if increment <= 0.0:
            self.increments_withheld += 1
            if increment < 0.0:
                # The queue sits above the set point: trim the window so the
                # standing queue is pulled back toward 90 % instead of
                # drifting into overflow.
                floor = max(self.min_cwnd, float(self.ctx.options.initial_cwnd_segments))
                self.cwnd = max(self.cwnd + increment, floor)
            return
        self.increments_granted += increment

        grown = self.cwnd + increment
        if grown > self.ssthresh:
            overshoot = grown - self.ssthresh
            self.cwnd = self.ssthresh
            self._congestion_avoidance(overshoot)
        else:
            self.cwnd = grown

    # ------------------------------------------------------------------
    # reductions also reset controller memory
    # ------------------------------------------------------------------
    def _reset_controller(self) -> None:
        if self.config.reset_integral_on_congestion:
            self.pid.reset()
            self._last_control_time = None

    def on_local_congestion(self, qlen: int, capacity: int | None, in_flight_bytes: int) -> None:
        super().on_local_congestion(qlen, capacity, in_flight_bytes)
        self._reset_controller()

    def on_enter_recovery(self, in_flight_bytes: int) -> None:
        super().on_enter_recovery(in_flight_bytes)
        self._reset_controller()

    def on_rto(self, in_flight_bytes: int) -> None:
        super().on_rto(in_flight_bytes)
        self._reset_controller()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RestrictedSlowStart cwnd={self.cwnd:.2f} "
            f"sp={self.config.setpoint_fraction:.2f} "
            f"invocations={self.controller_invocations}>"
        )


# Make the algorithm selectable by name ("restricted") wherever the registry
# is used (scenario builders, experiment harness, examples).
register_cc(RestrictedSlowStart.name, RestrictedSlowStart, overwrite=True)
