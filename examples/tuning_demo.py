#!/usr/bin/env python
"""Ziegler–Nichols tuning of the restricted slow-start controller.

The paper obtains its PID gains by raising the proportional gain until the
loop oscillates (the ultimate-gain experiment) and then applying the
modified constants Kp = 0.33·Kc, Ti = 0.5·Tc, Td = 0.33·Tc.  This example
automates that procedure against the simulator:

1. relay-feedback tuning against the fluid interface-queue model (fast);
2. optionally, the full packet-level ultimate-gain sweep (``--packet-level``);
3. a verification run with the tuned gains, reporting stalls, throughput and
   how closely the IFQ tracks the 90% set point.

Usage::

    python examples/tuning_demo.py
    python examples/tuning_demo.py --packet-level --rule zn_classic_pid
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.control import TUNING_RULES
from repro.core import (
    RestrictedSlowStartConfig,
    autotune_gains,
    autotune_gains_fluid,
)
from repro.experiments import run_single_flow
from repro.units import Mbps, format_rate
from repro.workloads import PathConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rule", default="allcock_modified", choices=sorted(TUNING_RULES),
                        help="tuning rule applied to the measured (Kc, Tc)")
    parser.add_argument("--packet-level", action="store_true",
                        help="also run the packet-level ultimate-gain sweep (slow)")
    parser.add_argument("--duration", type=float, default=12.0,
                        help="verification run duration (simulated seconds)")
    args = parser.parse_args()

    # A moderate path keeps the packet-level option tolerable.
    config = PathConfig(bottleneck_rate_bps=Mbps(50), rtt=0.06,
                        ifq_capacity_packets=100)

    print("== 1. relay-feedback tuning on the fluid IFQ model ==")
    fluid = autotune_gains_fluid(config, rule=args.rule)
    for key, value in fluid.summary().items():
        print(f"  {key:12s} {value}")

    gains = fluid.gains
    if args.packet_level:
        print("\n== 2. packet-level ultimate-gain experiment (this takes a while) ==")
        packet = autotune_gains(config=config, rule=args.rule, duration=5.0,
                                max_iterations=10, refine_steps=2)
        for key, value in packet.summary().items():
            print(f"  {key:12s} {value}")
        gains = packet.gains

    print("\n== 3. verification run with the tuned gains ==")
    rss = RestrictedSlowStartConfig(gains=gains)
    result = run_single_flow("restricted", config=config, duration=args.duration,
                             rss_config=rss)
    tail = result.ifq_occupancy[result.ifq_times > args.duration / 2.0]
    setpoint = 0.9 * config.ifq_capacity_packets
    print(f"  goodput          {format_rate(result.goodput_bps)} "
          f"({result.link_utilization * 100:.1f}% of the bottleneck)")
    print(f"  send stalls      {result.send_stalls}")
    print(f"  IFQ set point    {setpoint:.0f} packets")
    print(f"  IFQ tail mean    {float(np.mean(tail)) if tail.size else 0.0:.1f} packets")
    print(f"  IFQ peak         {result.ifq_peak} packets "
          f"(capacity {config.ifq_capacity_packets})")


if __name__ == "__main__":
    main()
