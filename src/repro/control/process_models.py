"""Analytic process models.

These small continuous-time models serve three purposes:

* unit-test the PID controller and the tuning procedures quickly, without
  running the packet-level simulator;
* provide a *fluid approximation of the interface queue*
  (:class:`QueueProcessModel`) so the Ziegler–Nichols / relay tuners can get
  a first gain estimate in milliseconds, which the packet-level autotuner
  (:mod:`repro.core.tuning`) then refines;
* document the control-theoretic view of the system the paper sketches
  ("the gain is calculated using a first order differential equation").
"""

from __future__ import annotations

from collections import deque

from ..errors import ControlError

__all__ = ["ProcessModel", "FirstOrderProcess", "IntegratingProcess", "QueueProcessModel"]


class ProcessModel:
    """A single-input single-output process advanced in fixed steps."""

    def step(self, u: float, dt: float) -> float:
        """Apply input ``u`` for ``dt`` seconds and return the new output."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return the process to its initial state."""
        raise NotImplementedError

    @property
    def output(self) -> float:
        """Current process output."""
        raise NotImplementedError


class FirstOrderProcess(ProcessModel):
    """First-order-plus-dead-time (FOPDT) process.

    ``tau * dy/dt + y = K * u(t - theta)``
    """

    def __init__(self, gain: float, tau: float, dead_time: float = 0.0, y0: float = 0.0) -> None:
        if tau <= 0:
            raise ControlError("tau must be positive")
        if dead_time < 0:
            raise ControlError("dead_time must be >= 0")
        self.gain = float(gain)
        self.tau = float(tau)
        self.dead_time = float(dead_time)
        self.y0 = float(y0)
        self._y = float(y0)
        self._delay_buffer: deque[tuple[float, float]] = deque()
        self._elapsed = 0.0

    def reset(self) -> None:
        self._y = self.y0
        self._delay_buffer.clear()
        self._elapsed = 0.0

    @property
    def output(self) -> float:
        return self._y

    def _delayed_input(self, u: float, dt: float) -> float:
        if self.dead_time == 0.0:
            return u
        self._delay_buffer.append((self._elapsed, u))
        target = self._elapsed - self.dead_time
        delayed = 0.0
        while self._delay_buffer and self._delay_buffer[0][0] <= target:
            delayed = self._delay_buffer.popleft()[1]
        return delayed

    def step(self, u: float, dt: float) -> float:
        if dt <= 0:
            raise ControlError("dt must be positive")
        u_eff = self._delayed_input(u, dt)
        self._elapsed += dt
        # exact discretisation of the first-order lag over the step
        import math

        alpha = math.exp(-dt / self.tau)
        self._y = alpha * self._y + (1.0 - alpha) * self.gain * u_eff
        return self._y


class IntegratingProcess(ProcessModel):
    """Pure integrator with gain: ``dy/dt = K * u`` (optionally leaky)."""

    def __init__(self, gain: float, leak: float = 0.0, y0: float = 0.0) -> None:
        if leak < 0:
            raise ControlError("leak must be >= 0")
        self.gain = float(gain)
        self.leak = float(leak)
        self.y0 = float(y0)
        self._y = float(y0)

    def reset(self) -> None:
        self._y = self.y0

    @property
    def output(self) -> float:
        return self._y

    def step(self, u: float, dt: float) -> float:
        if dt <= 0:
            raise ControlError("dt must be positive")
        self._y += (self.gain * u - self.leak * self._y) * dt
        return self._y


class QueueProcessModel(ProcessModel):
    """Fluid approximation of the sender interface queue during slow-start.

    State: queue occupancy ``q`` (packets, clipped to ``[0, capacity]``).
    Input ``u``: the per-ACK congestion-window increment (segments) chosen by
    the controller.

    During slow-start the packet arrival rate at the IFQ is the ACK rate
    times ``(1 + u)`` (each ACK releases one replacement packet plus the
    window increment) while the NIC drains at the line rate.  With the ACK
    rate approximately equal to the drain rate ``mu`` (packets/s), the queue
    evolves as::

        dq/dt ≈ mu * u      (while 0 < q < capacity)

    plus a dead time of roughly one round-trip before window decisions show
    up at the queue.  The model exposes exactly that integrator-with-delay
    behaviour, which is why P-only control of the real system oscillates —
    and why Ziegler–Nichols tuning applies cleanly.
    """

    def __init__(
        self,
        capacity: float,
        drain_rate_pps: float,
        rtt: float,
        q0: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ControlError("capacity must be positive")
        if drain_rate_pps <= 0:
            raise ControlError("drain_rate_pps must be positive")
        if rtt < 0:
            raise ControlError("rtt must be >= 0")
        self.capacity = float(capacity)
        self.drain_rate_pps = float(drain_rate_pps)
        self.rtt = float(rtt)
        self.q0 = float(q0)
        self._q = float(q0)
        self._delay_buffer: deque[tuple[float, float]] = deque()
        self._elapsed = 0.0
        self.overflows = 0

    def reset(self) -> None:
        self._q = self.q0
        self._delay_buffer.clear()
        self._elapsed = 0.0
        self.overflows = 0

    @property
    def output(self) -> float:
        return self._q

    @property
    def occupancy_fraction(self) -> float:
        return self._q / self.capacity

    def step(self, u: float, dt: float) -> float:
        if dt <= 0:
            raise ControlError("dt must be positive")
        # apply the RTT feedback delay to the controller action
        self._delay_buffer.append((self._elapsed, u))
        target = self._elapsed - self.rtt
        u_eff = 0.0
        while self._delay_buffer and self._delay_buffer[0][0] <= target:
            u_eff = self._delay_buffer.popleft()[1]
        self._elapsed += dt
        self._q += self.drain_rate_pps * u_eff * dt
        if self._q > self.capacity:
            self._q = self.capacity
            self.overflows += 1
        elif self._q < 0.0:
            self._q = 0.0
        return self._q
