"""Shared test/validation configurations.

The packet-level test suite and the fluid-vs-packet cross-validation grid
both need *scaled-down* paths that preserve the paper's qualitative regime
(slow-start overshoot of the IFQ, send-stalls, restricted-slow-start
regulation) at a fraction of the event cost of the full-scale ANL–LBNL
configuration.  Keeping them in the package — rather than in a test-only
``conftest`` — makes them importable under pytest's rootdir collection (no
relative imports between test modules) and reusable by the validation
harness and CI smoke checks.
"""

from __future__ import annotations

from .units import Mbps
from .workloads.scenarios import PathConfig

__all__ = ["SMALL_PATH", "TINY_PATH", "small_path_variants"]


#: Scaled-down evaluation path used across the test suite.  Chosen so the
#: IFQ (20 packets) is well below the path BDP (~65 packets), preserving the
#: paper's qualitative regime (slow-start overruns the IFQ, standard TCP
#: stalls and needs many RTTs to recover) at ~1/5 of the event cost of the
#: full-scale 100 Mbit/s / 60 ms configuration.
SMALL_PATH = PathConfig(
    bottleneck_rate_bps=Mbps(20),
    rtt=0.040,
    ifq_capacity_packets=20,
    router_buffer_packets=150,
    ack_path_buffer_packets=600,
    receiver_ifq_capacity_packets=600,
    rwnd_factor=4.0,
)

#: An even smaller path for smoke tests where wall-clock dominates.
TINY_PATH = SMALL_PATH.replace(
    bottleneck_rate_bps=Mbps(10),
    rtt=0.020,
    ifq_capacity_packets=10,
)


def small_path_variants() -> list[PathConfig]:
    """Scaled-down ``PathConfig`` points spanning the sweeps' axes.

    Used by the fluid-vs-packet cross-validation grid: the points vary the
    IFQ size, RTT and bottleneck rate around :data:`SMALL_PATH` the same way
    experiments E3–E5 do at full scale.
    """
    return [
        SMALL_PATH,
        SMALL_PATH.replace(ifq_capacity_packets=10),
        SMALL_PATH.replace(ifq_capacity_packets=60),
        SMALL_PATH.replace(rtt=0.020),
        SMALL_PATH.replace(rtt=0.080),
        SMALL_PATH.replace(bottleneck_rate_bps=Mbps(10)),
        SMALL_PATH.replace(bottleneck_rate_bps=Mbps(40)),
    ]
