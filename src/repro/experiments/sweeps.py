"""Parameter-sweep experiments (E3, E4, E5, E6, E10).

The paper's evaluation is a single operating point (100 Mbit/s, 60 ms,
txqueuelen 100).  These sweeps map out how the comparison behaves around
that point, which both sanity-checks the reproduction (the advantage should
vanish when the IFQ is larger than the BDP) and covers the ablations listed
in ``DESIGN.md``:

* :func:`ifq_size_sweep` (E3) — ``txqueuelen`` from 25 to 1000 packets;
* :func:`rtt_sweep` (E4) — 10 to 200 ms;
* :func:`bandwidth_sweep` (E5) — 10 to 622 Mbit/s;
* :func:`setpoint_sweep` (E6) — controller set point 0.5 to 1.0;
* :func:`transfer_size_sweep` (E10) — completion time of 1 MB to 256 MB
  transfers.

Every sweep returns a :class:`SweepResult` whose rows carry, per parameter
value, the goodput and stall counts of both algorithms; sweeps can fan out
over a process pool (``max_workers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.tables import Table
from ..core.config import RestrictedSlowStartConfig
from ..errors import ExperimentError
from ..units import MB, Mbps, format_rate
from ..workloads.scenarios import PathConfig
from .parallel import map_runs
from .runner import run_single_flow

__all__ = [
    "SweepResult",
    "ifq_size_sweep",
    "rtt_sweep",
    "bandwidth_sweep",
    "setpoint_sweep",
    "transfer_size_sweep",
    "render_sweep",
]

#: Algorithms compared at every sweep point.
SWEEP_ALGORITHMS = ("reno", "restricted")


@dataclass
class SweepResult:
    """Rows of a one-dimensional parameter sweep."""

    name: str
    parameter: str
    rows: list[dict] = field(default_factory=list)

    def column(self, key: str) -> list:
        """Values of ``key`` across rows (missing keys become ``None``)."""
        return [row.get(key) for row in self.rows]

    def row_for(self, value) -> dict:
        """The row whose parameter equals ``value``."""
        for row in self.rows:
            if row[self.parameter] == value:
                return row
        raise ExperimentError(f"no row with {self.parameter}={value!r}")


def _comparison_row(param_name: str, param_value, results: dict[str, object]) -> dict:
    row: dict = {param_name: param_value}
    for algo, res in results.items():
        row[f"{algo}_goodput_bps"] = res.flow.goodput_bps
        row[f"{algo}_send_stalls"] = res.flow.send_stalls
        row[f"{algo}_retrans"] = res.flow.pkts_retrans
        row[f"{algo}_utilization"] = res.link_utilization
    if all(f"{a}_goodput_bps" in row for a in ("reno", "restricted")):
        base = row["reno_goodput_bps"]
        row["improvement_percent"] = (
            (row["restricted_goodput_bps"] - base) / base * 100.0 if base > 0 else 0.0
        )
    return row


def _run_comparison_point(param_name: str, param_value, duration: float, seed: int,
                          configs: dict[str, dict], max_workers: int | None,
                          backend: str = "packet") -> dict:
    kwargs_list = [dict(cc=algo, duration=duration, seed=seed, backend=backend,
                        **configs[algo])
                   for algo in SWEEP_ALGORITHMS]
    results = map_runs(run_single_flow, kwargs_list, max_workers=max_workers)
    return _comparison_row(param_name, param_value, dict(zip(SWEEP_ALGORITHMS, results)))


# ---------------------------------------------------------------------------
# E3: interface-queue size
# ---------------------------------------------------------------------------

def ifq_size_sweep(
    sizes: Sequence[int] = (25, 50, 100, 200, 400, 1000),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the sender ``txqueuelen`` (E3)."""
    base = base_config if base_config is not None else PathConfig()
    result = SweepResult(name="ifq_size_sweep", parameter="ifq_capacity_packets")
    for size in sizes:
        cfg = base.replace(ifq_capacity_packets=int(size))
        configs = {algo: dict(config=cfg) for algo in SWEEP_ALGORITHMS}
        result.rows.append(_run_comparison_point(
            "ifq_capacity_packets", int(size), duration, seed, configs, max_workers,
            backend=backend))
    return result


# ---------------------------------------------------------------------------
# E4: round-trip time
# ---------------------------------------------------------------------------

def rtt_sweep(
    rtts: Sequence[float] = (0.010, 0.030, 0.060, 0.120, 0.200),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the path round-trip time (E4)."""
    base = base_config if base_config is not None else PathConfig()
    result = SweepResult(name="rtt_sweep", parameter="rtt")
    for rtt in rtts:
        cfg = base.replace(rtt=float(rtt))
        configs = {
            "reno": dict(config=cfg),
            # gains scale with the RTT exactly as the tuning procedure would
            "restricted": dict(config=cfg,
                               rss_config=RestrictedSlowStartConfig.for_path(float(rtt))),
        }
        result.rows.append(_run_comparison_point("rtt", float(rtt), duration, seed,
                                                 configs, max_workers, backend=backend))
    return result


# ---------------------------------------------------------------------------
# E5: bottleneck bandwidth
# ---------------------------------------------------------------------------

def bandwidth_sweep(
    rates_mbps: Sequence[float] = (10, 50, 100, 250, 622),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the bottleneck (and NIC) rate (E5)."""
    base = base_config if base_config is not None else PathConfig()
    result = SweepResult(name="bandwidth_sweep", parameter="bottleneck_mbps")
    for rate in rates_mbps:
        cfg = base.replace(bottleneck_rate_bps=Mbps(rate))
        configs = {algo: dict(config=cfg) for algo in SWEEP_ALGORITHMS}
        result.rows.append(_run_comparison_point("bottleneck_mbps", float(rate), duration,
                                                 seed, configs, max_workers,
                                                 backend=backend))
    return result


# ---------------------------------------------------------------------------
# E6: controller set point
# ---------------------------------------------------------------------------

def setpoint_sweep(
    setpoints: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95, 1.0),
    duration: float = 10.0,
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Sweep the PID set point (the paper fixes 0.9) — restricted only (E6)."""
    base = base_config if base_config is not None else PathConfig()
    result = SweepResult(name="setpoint_sweep", parameter="setpoint_fraction")
    kwargs_list = []
    for sp in setpoints:
        rss = RestrictedSlowStartConfig.for_path(base.rtt).replace(setpoint_fraction=float(sp))
        kwargs_list.append(dict(cc="restricted", config=base, duration=duration,
                                seed=seed, rss_config=rss, backend=backend))
    runs = map_runs(run_single_flow, kwargs_list, max_workers=max_workers)
    for sp, run in zip(setpoints, runs):
        result.rows.append({
            "setpoint_fraction": float(sp),
            "restricted_goodput_bps": run.flow.goodput_bps,
            "restricted_send_stalls": run.flow.send_stalls,
            "restricted_utilization": run.link_utilization,
            "ifq_peak": run.ifq_peak,
            "ifq_drops": run.ifq_drops,
        })
    return result


# ---------------------------------------------------------------------------
# E10: transfer size (completion time)
# ---------------------------------------------------------------------------

def transfer_size_sweep(
    sizes_bytes: Sequence[float] = (MB(1), MB(8), MB(32), MB(128), MB(256)),
    seed: int = 1,
    base_config: PathConfig | None = None,
    max_duration: float = 60.0,
    max_workers: int | None = None,
    backend: str = "packet",
) -> SweepResult:
    """Completion time of finite transfers under both algorithms (E10)."""
    base = base_config if base_config is not None else PathConfig()
    result = SweepResult(name="transfer_size_sweep", parameter="transfer_bytes")
    for size in sizes_bytes:
        kwargs_list = [
            dict(cc=algo, config=base, duration=max_duration, seed=seed,
                 total_bytes=int(size), run_past_duration_until_complete=False,
                 backend=backend)
            for algo in SWEEP_ALGORITHMS
        ]
        runs = dict(zip(SWEEP_ALGORITHMS, map_runs(run_single_flow, kwargs_list,
                                                   max_workers=max_workers)))
        row: dict = {"transfer_bytes": float(size)}
        for algo, run in runs.items():
            row[f"{algo}_completion_time"] = run.flow.completion_time
            row[f"{algo}_goodput_bps"] = run.flow.goodput_bps
            row[f"{algo}_send_stalls"] = run.flow.send_stalls
        if row["reno_completion_time"] and row["restricted_completion_time"]:
            row["speedup"] = row["reno_completion_time"] / row["restricted_completion_time"]
        else:
            row["speedup"] = None
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_sweep(result: SweepResult) -> str:
    """Render a sweep as an aligned text table."""
    if not result.rows:
        return f"{result.name}: (no rows)"
    columns = [result.parameter] + [k for k in result.rows[0] if k != result.parameter]
    table = Table(columns, title=result.name)
    for row in result.rows:
        cells = []
        for col in columns:
            value = row.get(col)
            if value is None:
                cells.append("-")
            elif "goodput_bps" in col:
                cells.append(format_rate(value))
            elif isinstance(value, float):
                cells.append(f"{value:.3g}")
            else:
                cells.append(str(value))
        table.add_row(*cells)
    return table.render()
