"""Network substrate: packets, queues, interfaces, links, routers, topologies."""

from .address import Address, AddressAllocator, FlowId
from .aqm import CoDelQueue, DualPI2Queue
from .interface import InterfaceStats, NetworkInterface
from .lossmodels import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)
from .node import Node
from .packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    ecn_capable,
)
from .queues import DropTailQueue, InfiniteQueue, PacketQueue, QueueStats, REDQueue
from .router import Router
from .topology import LinkSpec, Topology, default_queue_factory

__all__ = [
    "Address",
    "AddressAllocator",
    "FlowId",
    "Packet",
    "PROTO_TCP",
    "PROTO_UDP",
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "ecn_capable",
    "PacketQueue",
    "DropTailQueue",
    "REDQueue",
    "InfiniteQueue",
    "CoDelQueue",
    "DualPI2Queue",
    "QueueStats",
    "NetworkInterface",
    "InterfaceStats",
    "Node",
    "Router",
    "Topology",
    "LinkSpec",
    "default_queue_factory",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DeterministicLoss",
]
