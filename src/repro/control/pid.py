"""PID controller.

The paper drives the slow-start window with "a PID control algorithm [whose]
gain is calculated using a first order differential equation", i.e. the
textbook transfer function::

    u(t) = Kp * ( e(t) + 1/Ti * ∫ e dt + Td * de/dt )

This module implements that controller in incremental, discrete-time form
with the features a real deployment needs:

* configurable proportional / integral / derivative gains
  (:class:`PIDGains`, either as ``(kp, ki, kd)`` or as the classical
  ``(Kp, Ti, Td)`` time-constant parametrisation used by Ziegler–Nichols);
* output saturation with **anti-windup** (back-calculation by default, with
  conditional integration available), since the slow-start increment is
  clamped to a small range and the loop spends long stretches saturated;
* derivative-on-measurement with an optional first-order filter, avoiding
  derivative kick when the set point changes and attenuating packet-level
  noise in the queue-occupancy signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ControlError

__all__ = ["PIDGains", "PIDController"]


@dataclass(frozen=True)
class PIDGains:
    """Controller gains in parallel form (``kp``, ``ki``, ``kd``)."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ControlError("PID gains must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def from_time_constants(cls, kp: float, ti: float | None = None, td: float = 0.0) -> "PIDGains":
        """Build gains from the classical ``(Kp, Ti, Td)`` parametrisation.

        ``Ti`` is the integral (reset) time in seconds (``None`` or ``inf``
        disables integral action); ``Td`` is the derivative time in seconds.
        """
        if kp < 0:
            raise ControlError("Kp must be non-negative")
        if ti is not None and ti <= 0 and not math.isinf(ti):
            raise ControlError("Ti must be positive, None or inf")
        if td < 0:
            raise ControlError("Td must be non-negative")
        ki = 0.0 if ti is None or math.isinf(ti) else kp / ti
        kd = kp * td
        return cls(kp=kp, ki=ki, kd=kd)

    @property
    def ti(self) -> float:
        """Integral time constant implied by ``kp``/``ki`` (``inf`` when ki=0)."""
        return math.inf if self.ki == 0 else self.kp / self.ki

    @property
    def td(self) -> float:
        """Derivative time constant implied by ``kp``/``kd`` (0 when kp=0)."""
        return 0.0 if self.kp == 0 else self.kd / self.kp

    def scaled(self, factor: float) -> "PIDGains":
        """Return gains multiplied by ``factor`` (used by tuning sweeps)."""
        return PIDGains(self.kp * factor, self.ki * factor, self.kd * factor)


class PIDController:
    """Discrete-time PID controller with saturation and anti-windup.

    Parameters
    ----------
    gains:
        :class:`PIDGains`.
    setpoint:
        Target value of the process variable.
    output_min, output_max:
        Saturation limits for the controller output (``None`` = unbounded).
    derivative_filter_tau:
        Time constant (seconds) of the first-order filter applied to the
        measured process variable before differentiation; 0 disables it.
    anti_windup:
        ``"back_calculation"`` (default) bleeds the integral toward the value
        consistent with the saturated output at a rate set by
        ``tracking_time``; ``"conditional"`` only integrates when doing so
        does not deepen the saturation; ``"none"`` disables protection.
    tracking_time:
        Back-calculation tracking time constant ``Tt`` in seconds; defaults
        to the integral time ``Ti`` implied by the gains.
    """

    ANTI_WINDUP_MODES = ("back_calculation", "conditional", "none")

    def __init__(
        self,
        gains: PIDGains,
        setpoint: float,
        output_min: float | None = None,
        output_max: float | None = None,
        derivative_filter_tau: float = 0.0,
        anti_windup: str = "back_calculation",
        tracking_time: float | None = None,
    ) -> None:
        if output_min is not None and output_max is not None and output_min > output_max:
            raise ControlError("output_min must not exceed output_max")
        if derivative_filter_tau < 0:
            raise ControlError("derivative_filter_tau must be >= 0")
        if anti_windup not in self.ANTI_WINDUP_MODES:
            raise ControlError(
                f"anti_windup must be one of {self.ANTI_WINDUP_MODES}, got {anti_windup!r}"
            )
        if tracking_time is not None and tracking_time <= 0:
            raise ControlError("tracking_time must be positive")
        self.gains = gains
        self.setpoint = float(setpoint)
        self.output_min = output_min
        self.output_max = output_max
        self.derivative_filter_tau = float(derivative_filter_tau)
        self.anti_windup = anti_windup
        self.tracking_time = tracking_time
        self._integral = 0.0
        self._prev_pv: float | None = None
        self._filtered_pv: float | None = None
        self.last_error = 0.0
        self.last_output = 0.0
        self.last_p = 0.0
        self.last_i = 0.0
        self.last_d = 0.0
        self.updates = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear integral and derivative memory."""
        self._integral = 0.0
        self._prev_pv = None
        self._filtered_pv = None
        self.last_error = 0.0
        self.last_output = 0.0
        self.last_p = self.last_i = self.last_d = 0.0

    # ------------------------------------------------------------------
    def _clamp(self, value: float) -> float:
        if self.output_max is not None and value > self.output_max:
            return self.output_max
        if self.output_min is not None and value < self.output_min:
            return self.output_min
        return value

    def update(self, pv: float, dt: float) -> float:
        """Advance the controller by ``dt`` seconds with measurement ``pv``.

        Returns the saturated controller output.
        """
        if dt <= 0:
            raise ControlError(f"dt must be positive, got {dt!r}")
        error = self.setpoint - pv
        g = self.gains

        # -- proportional --------------------------------------------------
        p_term = g.kp * error

        # -- derivative (on measurement, optionally filtered) --------------
        if self.derivative_filter_tau > 0 and self._filtered_pv is not None:
            alpha = dt / (self.derivative_filter_tau + dt)
            filtered = self._filtered_pv + alpha * (pv - self._filtered_pv)
        else:
            filtered = pv
        if self._prev_pv is None or g.kd == 0.0:
            d_term = 0.0
        else:
            prev = self._filtered_pv if self.derivative_filter_tau > 0 else self._prev_pv
            d_term = -g.kd * (filtered - prev) / dt
        self._filtered_pv = filtered
        self._prev_pv = pv

        # -- integral with anti-windup --------------------------------------
        candidate_integral = self._integral + g.ki * error * dt
        unsaturated = p_term + candidate_integral + d_term
        saturated = self._clamp(unsaturated)
        if self.anti_windup == "back_calculation" and g.ki > 0.0:
            # bleed the integral toward consistency with the clamped output
            tt = self.tracking_time if self.tracking_time is not None else self.gains.ti
            if tt > 0 and not math.isinf(tt):
                candidate_integral += (saturated - unsaturated) * dt / tt
            self._integral = candidate_integral
        elif self.anti_windup == "conditional" and unsaturated != saturated:
            # output is saturated: only integrate if doing so drives the
            # output back toward the linear region
            if (unsaturated > saturated and error < 0) or (unsaturated < saturated and error > 0):
                self._integral = candidate_integral
        else:
            self._integral = candidate_integral
        output = self._clamp(p_term + self._integral + d_term)

        self.last_error = error
        self.last_p = p_term
        self.last_i = self._integral
        self.last_d = d_term
        self.last_output = output
        self.updates += 1
        return output

    # ------------------------------------------------------------------
    @property
    def integral(self) -> float:
        """Current value of the integral term."""
        return self._integral

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PIDController kp={self.gains.kp:.4g} ki={self.gains.ki:.4g} "
            f"kd={self.gains.kd:.4g} sp={self.setpoint:.3g}>"
        )
