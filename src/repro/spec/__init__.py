"""Declarative spec layer — one serializable object per kind of run.

Quickstart::

    from repro.spec import RunSpec, execute

    spec = RunSpec(cc="restricted", duration=25.0, backend="fluid")
    result = execute(spec)                  # SingleFlowResult
    text = spec.to_json()                   # JSON round-trip...
    clone = repro.spec.spec_from_json(text)
    assert clone == spec and clone.cache_key() == spec.cache_key()

See the README's "Spec API" section for the JSON schema, the migration
table from the legacy keyword signatures, and the deprecation policy.
"""

from .backends import (
    available_backends,
    backend_runner,
    ensure_backend,
    register_backend,
)
from .execute import execute
from .scenario import (
    SCENARIO_FACTORIES,
    CrossTrafficSpec,
    FlowSpec,
    LinkSpec,
    LossSpec,
    NodeSpec,
    QueueSpec,
    ScenarioSpec,
    TopologySpec,
    aqm_dumbbell,
    asymmetric_path,
    available_scenarios,
    dumbbell,
    ensure_fluid_multiflow_scenario,
    ensure_fluid_scenario,
    fluid_multiflow_unsupported_features,
    fluid_unsupported_features,
    from_bulk_flows,
    l4s_dumbbell,
    lossy_link,
    parking_lot,
    red_bottleneck,
    scenario_factory,
    shared_path,
)
from .specs import (
    SPEC_KINDS,
    ComparisonSpec,
    MultiFlowSpec,
    RunSpec,
    SpecBase,
    SweepSpec,
    dump_spec,
    load_spec,
    spec_from_dict,
    spec_from_json,
)

__all__ = [
    "SpecBase",
    "RunSpec",
    "ComparisonSpec",
    "MultiFlowSpec",
    "SweepSpec",
    "ScenarioSpec",
    "TopologySpec",
    "NodeSpec",
    "LinkSpec",
    "LossSpec",
    "QueueSpec",
    "FlowSpec",
    "CrossTrafficSpec",
    "dumbbell",
    "shared_path",
    "parking_lot",
    "asymmetric_path",
    "lossy_link",
    "aqm_dumbbell",
    "l4s_dumbbell",
    "red_bottleneck",
    "from_bulk_flows",
    "SCENARIO_FACTORIES",
    "scenario_factory",
    "available_scenarios",
    "fluid_unsupported_features",
    "fluid_multiflow_unsupported_features",
    "ensure_fluid_scenario",
    "ensure_fluid_multiflow_scenario",
    "SPEC_KINDS",
    "spec_from_dict",
    "spec_from_json",
    "load_spec",
    "dump_spec",
    "execute",
    "register_backend",
    "ensure_backend",
    "backend_runner",
    "available_backends",
]
