"""Tests for the PID controller and its gains."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.control import PIDController, PIDGains
from repro.errors import ControlError


class TestPIDGains:
    def test_parallel_form_fields(self):
        g = PIDGains(kp=2.0, ki=0.5, kd=0.1)
        assert (g.kp, g.ki, g.kd) == (2.0, 0.5, 0.1)

    def test_from_time_constants(self):
        g = PIDGains.from_time_constants(kp=1.0, ti=0.5, td=0.2)
        assert g.ki == pytest.approx(2.0)
        assert g.kd == pytest.approx(0.2)

    def test_time_constant_roundtrip(self):
        g = PIDGains.from_time_constants(kp=1.5, ti=0.4, td=0.3)
        assert g.ti == pytest.approx(0.4)
        assert g.td == pytest.approx(0.3)

    def test_no_integral_action(self):
        g = PIDGains.from_time_constants(kp=1.0, ti=None)
        assert g.ki == 0.0
        assert math.isinf(g.ti)

    def test_infinite_ti_allowed(self):
        g = PIDGains.from_time_constants(kp=1.0, ti=math.inf)
        assert g.ki == 0.0

    def test_negative_gains_rejected(self):
        with pytest.raises(ControlError):
            PIDGains(kp=-1.0)
        with pytest.raises(ControlError):
            PIDGains.from_time_constants(kp=1.0, ti=-1.0)
        with pytest.raises(ControlError):
            PIDGains.from_time_constants(kp=1.0, td=-0.1)

    def test_scaled(self):
        g = PIDGains(1.0, 2.0, 3.0).scaled(0.5)
        assert (g.kp, g.ki, g.kd) == (0.5, 1.0, 1.5)


class TestProportionalAction:
    def test_output_proportional_to_error(self):
        pid = PIDController(PIDGains(kp=2.0), setpoint=10.0)
        assert pid.update(pv=7.0, dt=0.1) == pytest.approx(6.0)

    def test_zero_error_zero_output(self):
        pid = PIDController(PIDGains(kp=2.0), setpoint=5.0)
        assert pid.update(pv=5.0, dt=0.1) == pytest.approx(0.0)

    def test_negative_error_negative_output(self):
        pid = PIDController(PIDGains(kp=1.0), setpoint=0.0)
        assert pid.update(pv=3.0, dt=0.1) == pytest.approx(-3.0)


class TestIntegralAction:
    def test_integral_accumulates(self):
        pid = PIDController(PIDGains(kp=0.0, ki=1.0), setpoint=1.0)
        out1 = pid.update(pv=0.0, dt=1.0)
        out2 = pid.update(pv=0.0, dt=1.0)
        assert out2 > out1

    def test_integral_eliminates_steady_state_error(self):
        # pure integrator process controlled by PI should converge to setpoint
        from repro.control import IntegratingProcess, simulate_closed_loop
        process = IntegratingProcess(gain=1.0)
        pid = PIDController(PIDGains.from_time_constants(kp=1.0, ti=1.0), setpoint=2.0)
        result = simulate_closed_loop(process, pid, duration=30.0, dt=0.01)
        assert result.steady_state_error() < 0.05

    def test_integral_term_visible(self):
        pid = PIDController(PIDGains(kp=0.0, ki=2.0), setpoint=1.0)
        pid.update(pv=0.0, dt=0.5)
        assert pid.integral == pytest.approx(1.0)


class TestDerivativeAction:
    def test_derivative_opposes_rising_pv(self):
        pid = PIDController(PIDGains(kp=0.0, ki=0.0, kd=1.0), setpoint=0.0)
        pid.update(pv=0.0, dt=0.1)
        out = pid.update(pv=1.0, dt=0.1)
        assert out < 0.0

    def test_derivative_zero_on_first_sample(self):
        pid = PIDController(PIDGains(kp=0.0, kd=1.0), setpoint=0.0)
        assert pid.update(pv=5.0, dt=0.1) == pytest.approx(0.0)

    def test_no_derivative_kick_on_setpoint_change(self):
        # derivative acts on the measurement, so changing the setpoint does
        # not produce a derivative spike
        pid = PIDController(PIDGains(kp=0.0, kd=1.0), setpoint=0.0)
        pid.update(pv=1.0, dt=0.1)
        pid.update(pv=1.0, dt=0.1)
        pid.setpoint = 100.0
        out = pid.update(pv=1.0, dt=0.1)
        assert out == pytest.approx(0.0, abs=1e-9)

    def test_filtered_derivative_smaller_than_raw(self):
        raw = PIDController(PIDGains(kp=0.0, kd=1.0), setpoint=0.0)
        filt = PIDController(PIDGains(kp=0.0, kd=1.0), setpoint=0.0,
                             derivative_filter_tau=1.0)
        for pid in (raw, filt):
            pid.update(pv=0.0, dt=0.1)
        raw_out = raw.update(pv=1.0, dt=0.1)
        filt_out = filt.update(pv=1.0, dt=0.1)
        assert abs(filt_out) < abs(raw_out)


class TestSaturationAndAntiWindup:
    def test_output_clamped(self):
        pid = PIDController(PIDGains(kp=10.0), setpoint=1.0, output_min=0.0, output_max=1.0)
        assert pid.update(pv=0.0, dt=0.1) == 1.0
        assert pid.update(pv=5.0, dt=0.1) == 0.0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ControlError):
            PIDController(PIDGains(kp=1.0), setpoint=0.0, output_min=1.0, output_max=0.0)

    def test_back_calculation_prevents_windup(self):
        gains = PIDGains.from_time_constants(kp=1.0, ti=0.1)
        pid = PIDController(gains, setpoint=1.0, output_min=0.0, output_max=1.0,
                            anti_windup="back_calculation")
        # long saturation at the high limit must not grow the integral unboundedly
        for _ in range(1000):
            pid.update(pv=0.0, dt=0.01)
        assert pid.integral < 5.0
        # once the PV crosses the setpoint the output must react quickly
        outputs = [pid.update(pv=2.0, dt=0.01) for _ in range(20)]
        assert outputs[-1] == 0.0

    def test_conditional_integration_also_bounds_integral(self):
        gains = PIDGains.from_time_constants(kp=1.0, ti=0.1)
        pid = PIDController(gains, setpoint=1.0, output_min=0.0, output_max=1.0,
                            anti_windup="conditional")
        for _ in range(1000):
            pid.update(pv=0.0, dt=0.01)
        with_protection = pid.integral
        naked = PIDController(gains, setpoint=1.0, output_min=0.0, output_max=1.0,
                              anti_windup="none")
        for _ in range(1000):
            naked.update(pv=0.0, dt=0.01)
        assert with_protection < naked.integral

    def test_unknown_anti_windup_rejected(self):
        with pytest.raises(ControlError):
            PIDController(PIDGains(kp=1.0), setpoint=0.0, anti_windup="magic")

    def test_invalid_tracking_time_rejected(self):
        with pytest.raises(ControlError):
            PIDController(PIDGains(kp=1.0), setpoint=0.0, tracking_time=0.0)

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=200),
           st.floats(min_value=0.001, max_value=1.0))
    def test_output_always_within_limits(self, pvs, dt):
        pid = PIDController(PIDGains.from_time_constants(kp=2.0, ti=0.5, td=0.1),
                            setpoint=1.0, output_min=-1.0, output_max=1.0)
        for pv in pvs:
            out = pid.update(pv, dt)
            assert -1.0 <= out <= 1.0


class TestHousekeeping:
    def test_dt_must_be_positive(self):
        pid = PIDController(PIDGains(kp=1.0), setpoint=0.0)
        with pytest.raises(ControlError):
            pid.update(pv=0.0, dt=0.0)

    def test_reset_clears_state(self):
        pid = PIDController(PIDGains.from_time_constants(kp=1.0, ti=0.5, td=0.1),
                            setpoint=1.0)
        pid.update(pv=0.0, dt=0.1)
        pid.update(pv=0.5, dt=0.1)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.last_output == 0.0

    def test_update_counter(self):
        pid = PIDController(PIDGains(kp=1.0), setpoint=0.0)
        for _ in range(7):
            pid.update(pv=0.0, dt=0.1)
        assert pid.updates == 7

    def test_term_introspection(self):
        pid = PIDController(PIDGains(kp=2.0, ki=1.0, kd=0.0), setpoint=1.0)
        pid.update(pv=0.0, dt=0.5)
        assert pid.last_p == pytest.approx(2.0)
        assert pid.last_i == pytest.approx(0.5)
        assert pid.last_error == pytest.approx(1.0)
