"""TCP connection and congestion state machines.

Two orthogonal state machines are modelled, mirroring the Linux stack the
paper patched:

* **connection states** (:class:`ConnState`) — a reduced handshake state
  machine (CLOSED / SYN_SENT / SYN_RCVD / ESTABLISHED / CLOSING).  Data flows
  only in ESTABLISHED.
* **congestion states** (:class:`CongState`) — the Linux ``tcp_ca_state``
  machine: OPEN, DISORDER (dup-ACKs seen but below the fast-retransmit
  threshold), CWR (window reduced for a non-loss reason, e.g. a local
  send-stall), RECOVERY (fast retransmit in progress) and LOSS (RTO fired).

:class:`LocalCongestionPolicy` controls how the stack reacts to a send-stall
(the IFQ rejecting a segment).  The paper observes that stock Linux "treats
these events in the same way as it would treat the network congestion",
which is :data:`LocalCongestionPolicy.TREAT_AS_CONGESTION`; the other
policies exist for ablation experiments.
"""

from __future__ import annotations

import enum

__all__ = ["ConnState", "CongState", "LocalCongestionPolicy"]


class ConnState(enum.Enum):
    """Connection establishment states (reduced TCP state machine)."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    CLOSING = "closing"


class CongState(enum.Enum):
    """Congestion-control states (Linux ``tcp_ca_state`` equivalents)."""

    OPEN = "open"
    DISORDER = "disorder"
    CWR = "cwr"
    RECOVERY = "recovery"
    LOSS = "loss"


class LocalCongestionPolicy(enum.Enum):
    """Reaction of the stack to a local send-stall (IFQ rejection)."""

    #: Stock Linux 2.4.x behaviour described in the paper: the stall is
    #: handled like a congestion signal — the window is reduced
    #: multiplicatively and the connection leaves slow-start (enters CWR).
    TREAT_AS_CONGESTION = "treat_as_congestion"

    #: Milder reaction: clamp the congestion window to the amount of data
    #: currently in flight but do not reduce ssthresh.
    CLAMP_ONLY = "clamp_only"

    #: Ignore the stall entirely (retry later); used to isolate how much of
    #: the damage comes from the *reaction* rather than the stall itself.
    IGNORE = "ignore"
