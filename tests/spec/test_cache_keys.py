"""Golden cache-key tests — the serialization contract, pinned.

A spec's ``cache_key()`` is the address of its cached result: any change
to a spec's fields, defaults, encoding or canonicalisation silently
invalidates every stored result (and, worse, could silently *collide*).
Pinning one known digest per spec kind turns an accidental serialization
change into an explicit test failure here, where the author can decide
whether the change is intended — and bump
:data:`repro.experiments.results_io.SCHEMA_VERSION` if it is.

If a failure below is intentional: regenerate the digests (each spec's
``cache_key()``), update GOLDEN_KEYS, and document the invalidation in the
README's cache-invalidation table.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec
from repro.spec import (
    ComparisonSpec,
    MultiFlowSpec,
    RunSpec,
    SweepSpec,
    dumbbell,
    spec_from_json,
)
from repro.workloads.scenarios import PathConfig


def _specs() -> dict[str, object]:
    """One representative (default-ish) spec per registered kind."""
    run = RunSpec()
    sweep = SweepSpec(values=(25, 100))
    return {
        "run": run,
        "comparison": ComparisonSpec(),
        "multi_flow": MultiFlowSpec(scenario=dumbbell(PathConfig(), 2)),
        "sweep": sweep,
        "scenario": dumbbell(PathConfig(), 1),
        "campaign": CampaignSpec(units=(run,), sweeps=(sweep,)),
    }


#: kind -> pinned sha256 hex digest of the spec built by ``_specs()``.
GOLDEN_KEYS = {
    "run": "dc5db14a5cbc29acd6d5b594f1e8b15e6c112b0e0aaeddb5cc3a6a2e1a721f48",
    "comparison": "8b673c07d9aa823afd7f69daef92179127b06a3fe501954db6a0af8a3d4f299a",
    "multi_flow": "b11bac768c60f1aaa63ec1b0a4835ab1e5944ef72cceac2c0da9244068367dfc",
    "sweep": "fdc39477da5319fa102be18357c23bf85d33c143f73098833da842f5bece2552",
    "scenario": "1362a0da8e6425dd42bb77e385febdb423c940b5a889491234aedae17dea80a6",
    "campaign": "e8edaa7b3b43143dd368f9b2dab03779aa589bf50243aa9c23ac38942f5b95ed",
}


class TestGoldenCacheKeys:
    def test_every_kind_is_pinned(self):
        # a newly registered spec kind must add a golden digest here
        assert set(_specs()) == set(GOLDEN_KEYS)

    @pytest.mark.parametrize("kind", sorted(GOLDEN_KEYS))
    def test_cache_key_matches_golden(self, kind):
        spec = _specs()[kind]
        assert spec.kind == kind
        assert spec.cache_key() == GOLDEN_KEYS[kind], (
            f"{kind} spec serialization changed: every stored result of "
            "this kind is invalidated.  If intended, update GOLDEN_KEYS, "
            "bump results_io.SCHEMA_VERSION if the result layout moved "
            "too, and extend the README cache-invalidation table.")

    @pytest.mark.parametrize("kind", sorted(GOLDEN_KEYS))
    def test_json_round_trip_preserves_key(self, kind):
        spec = _specs()[kind]
        assert spec_from_json(spec.to_json()).cache_key() == spec.cache_key()

    def test_integral_floats_canonicalise_to_one_key(self):
        assert (RunSpec(duration=2).cache_key()
                == RunSpec(duration=2.0).cache_key())

    def test_distinct_specs_get_distinct_keys(self):
        keys = {spec.cache_key() for spec in _specs().values()}
        assert len(keys) == len(GOLDEN_KEYS)
