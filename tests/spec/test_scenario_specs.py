"""Tests for the declarative scenario layer (specs, factories, validation)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExperimentError, UnsupportedScenarioError
from repro.spec import (
    CrossTrafficSpec,
    FlowSpec,
    LinkSpec,
    LossSpec,
    MultiFlowSpec,
    NodeSpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    asymmetric_path,
    available_scenarios,
    dumbbell,
    fluid_unsupported_features,
    from_bulk_flows,
    lossy_link,
    parking_lot,
    scenario_factory,
    shared_path,
    spec_from_dict,
    spec_from_json,
)
from repro.testing import SMALL_PATH
from repro.workloads import BulkFlowSpec

SCENARIO_EXAMPLES = [
    dumbbell(SMALL_PATH, 1),
    dumbbell(SMALL_PATH, 3, ccs=("reno", "restricted", "cubic"),
             start_times=(0.0, 0.1, 0.2)),
    shared_path(SMALL_PATH, 2, ccs="restricted"),
    parking_lot(SMALL_PATH, 3, long_cc="reno", cross_ccs="cubic"),
    asymmetric_path(SMALL_PATH, reverse_rate_fraction=0.25),
    lossy_link(SMALL_PATH, loss=0.01),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", SCENARIO_EXAMPLES,
                             ids=lambda s: f"{s.name}:{s.cache_key()[:8]}")
    def test_json_round_trip_preserves_equality_and_cache_key(self, spec):
        clone = spec_from_json(spec.to_json())
        assert clone == spec
        assert type(clone) is ScenarioSpec
        assert clone.cache_key() == spec.cache_key()

    @pytest.mark.parametrize("spec", SCENARIO_EXAMPLES,
                             ids=lambda s: f"{s.name}:{s.cache_key()[:8]}")
    def test_scenarios_pickle(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_default_scenario_is_the_canonical_dumbbell(self):
        from repro.workloads import PathConfig

        assert ScenarioSpec() == dumbbell(PathConfig(), 1)

    def test_run_spec_with_scenario_round_trips(self):
        spec = RunSpec(cc="restricted", duration=2.0, seed=3,
                       scenario=lossy_link(SMALL_PATH, loss=0.01))
        clone = spec_from_json(spec.to_json())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()
        assert clone.scenario.topology.links[0].loss_ab.model == "bernoulli"

    def test_multi_flow_spec_with_scenario_round_trips(self):
        spec = MultiFlowSpec(scenario=parking_lot(SMALL_PATH, 3), duration=2.0)
        clone = spec_from_json(spec.to_json())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_old_documents_without_scenario_still_load(self):
        spec = spec_from_dict({"kind": "run", "cc": "reno", "duration": 1.0})
        assert spec.scenario is None

    def test_unknown_fields_rejected_at_every_level(self):
        good = dumbbell(SMALL_PATH, 1).to_dict()
        with pytest.raises(ExperimentError, match="unknown ScenarioSpec field"):
            spec_from_dict({**good, "warp": 9})
        bad_topo = {**good, "topology": {**good["topology"], "mesh": True}}
        with pytest.raises(ExperimentError, match="unknown TopologySpec field"):
            spec_from_dict(bad_topo)
        bad_node = {**good, "topology": {
            **good["topology"],
            "nodes": [{"name": "x", "rolle": "host"}]}}
        with pytest.raises(ExperimentError, match="unknown NodeSpec field"):
            spec_from_dict(bad_node)
        bad_link = {**good, "topology": {
            **good["topology"],
            "links": [{"a": "r1", "b": "r2", "rate_bps": 1e6, "delay_s": 0.01,
                       "weight": 3}]}}
        with pytest.raises(ExperimentError, match="unknown LinkSpec field"):
            spec_from_dict(bad_link)
        bad_flow = {**good, "flows": [{"src": "sender0", "dst": "receiver0",
                                       "algo": "reno"}]}
        with pytest.raises(ExperimentError, match="unknown FlowSpec field"):
            spec_from_dict(bad_flow)
        bad_xt = {**good, "cross_traffic": [{"src": "sender0",
                                             "dst": "receiver0", "burst": 2}]}
        with pytest.raises(ExperimentError,
                           match="unknown CrossTrafficSpec field"):
            spec_from_dict(bad_xt)

    def test_cache_key_distinguishes_scenarios(self):
        a, b = dumbbell(SMALL_PATH, 1), dumbbell(SMALL_PATH, 2)
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == dumbbell(SMALL_PATH, 1).cache_key()


class TestValidation:
    def test_bad_node_role(self):
        with pytest.raises(ExperimentError, match="unknown node role"):
            NodeSpec("x", role="switch")

    def test_link_to_undeclared_node(self):
        with pytest.raises(ExperimentError, match="undeclared node"):
            TopologySpec(nodes=(NodeSpec("a"),),
                         links=(LinkSpec("a", "b", 1e6, 0.01),))

    def test_duplicate_node_names(self):
        with pytest.raises(ExperimentError, match="duplicate node name"):
            TopologySpec(nodes=(NodeSpec("a"), NodeSpec("a")))

    def test_self_link_rejected(self):
        with pytest.raises(ExperimentError, match="itself"):
            LinkSpec("a", "a", 1e6, 0.01)

    def test_bad_routing_weight(self):
        with pytest.raises(ExperimentError, match="routing weight"):
            TopologySpec(nodes=(NodeSpec("a"),), routing_weight="hops")

    def test_unknown_loss_model_and_params(self):
        with pytest.raises(ExperimentError, match="unknown loss model"):
            LossSpec("rayleigh")
        with pytest.raises(ExperimentError, match="loss parameter"):
            LossSpec("bernoulli", {"q": 0.1})

    def test_missing_required_loss_params_rejected_eagerly(self):
        # must fail at spec time, not as a TypeError at compile time
        with pytest.raises(ExperimentError, match="missing required"):
            LossSpec("gilbert_elliott", {})
        with pytest.raises(ExperimentError, match="missing required"):
            LossSpec("bernoulli")
        LossSpec("gilbert_elliott",
                 {"p_good_to_bad": 0.01, "p_bad_to_good": 0.3})  # ok

    def test_flow_endpoints_must_be_declared_hosts(self):
        topo = dumbbell(SMALL_PATH, 1).topology
        with pytest.raises(ExperimentError, match="not a declared host"):
            ScenarioSpec(config=SMALL_PATH, topology=topo,
                         flows=(FlowSpec("sender0", "nowhere"),))
        with pytest.raises(ExperimentError, match="not a declared host"):
            ScenarioSpec(config=SMALL_PATH, topology=topo,
                         flows=(FlowSpec("r1", "receiver0"),))

    def test_scenario_needs_a_flow(self):
        with pytest.raises(ExperimentError, match="at least one flow"):
            ScenarioSpec(config=SMALL_PATH,
                         topology=dumbbell(SMALL_PATH, 1).topology, flows=())

    def test_duplicate_flow_ports_rejected(self):
        topo = dumbbell(SMALL_PATH, 1).topology
        with pytest.raises(ExperimentError, match="collides"):
            ScenarioSpec(config=SMALL_PATH, topology=topo, flows=(
                FlowSpec("sender0", "receiver0", port=7000),
                FlowSpec("sender0", "receiver0", port=7000)))

    def test_explicit_port_colliding_with_auto_default_rejected(self):
        from repro.workloads import DATA_PORT_BASE

        topo = dumbbell(SMALL_PATH, 1).topology
        # flow 1's auto port is DATA_PORT_BASE + 1 — an explicit flow-0
        # port equal to it must be rejected at spec time, not at compile
        with pytest.raises(ExperimentError, match="collides"):
            ScenarioSpec(config=SMALL_PATH, topology=topo, flows=(
                FlowSpec("sender0", "receiver0", port=DATA_PORT_BASE + 1),
                FlowSpec("sender0", "receiver0")))

    def test_cross_traffic_endpoints_validated(self):
        topo = dumbbell(SMALL_PATH, 1).topology
        with pytest.raises(ExperimentError, match="not a declared host"):
            ScenarioSpec(config=SMALL_PATH, topology=topo,
                         flows=(FlowSpec("sender0", "receiver0"),),
                         cross_traffic=(CrossTrafficSpec("ghost", "receiver0"),))

    def test_conflicting_run_spec_config_rejected(self):
        with pytest.raises(ExperimentError, match="authoritative"):
            RunSpec(config=SMALL_PATH.replace(rtt=0.123),
                    scenario=dumbbell(SMALL_PATH, 1))

    def test_run_spec_adopts_scenario_config(self):
        spec = RunSpec(scenario=dumbbell(SMALL_PATH, 1))
        assert spec.config == SMALL_PATH
        assert spec.path_config == SMALL_PATH

    def test_multi_flow_rejects_flows_plus_scenario(self):
        with pytest.raises(ExperimentError, match="not\\s+both"):
            MultiFlowSpec(flows=(BulkFlowSpec(),),
                          scenario=dumbbell(SMALL_PATH, 1))

    def test_multi_flow_rejects_shared_paths_with_scenario(self):
        with pytest.raises(ExperimentError, match="shared_paths"):
            MultiFlowSpec(scenario=dumbbell(SMALL_PATH, 1), shared_paths=True)


class TestFactories:
    def test_gallery_is_complete(self):
        assert set(available_scenarios()) == {
            "dumbbell", "shared_path", "parking_lot", "asymmetric_path",
            "lossy_link", "aqm_dumbbell", "l4s_dumbbell", "red_bottleneck"}
        for name in available_scenarios():
            spec = scenario_factory(name)(config=SMALL_PATH)
            assert isinstance(spec, ScenarioSpec)
            assert spec.flows

    def test_unknown_factory_rejected(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            scenario_factory("torus")

    def test_dumbbell_matches_paper_topology(self):
        spec = dumbbell(SMALL_PATH, 2)
        assert spec.topology.router_names == ("r1", "r2")
        assert spec.topology.host_names == ("sender0", "receiver0",
                                            "sender1", "receiver1")
        bottleneck = spec.topology.links[0]
        assert bottleneck.rate_bps == SMALL_PATH.bottleneck_rate_bps
        access = spec.topology.links[1]
        assert access.queue_ab_packets == SMALL_PATH.ifq_capacity_packets

    def test_parking_lot_shape(self):
        spec = parking_lot(SMALL_PATH, 3)
        assert len(spec.topology.router_names) == 4
        assert len(spec.flows) == 4  # one long + 3 cross flows
        # the long path's propagation RTT matches the config
        total_delay = sum(l.delay_s for l in spec.topology.links
                          if l.name.startswith("bottleneck"))
        assert total_delay == pytest.approx(SMALL_PATH.bottleneck_delay)

    def test_asymmetric_path_reverse_rate(self):
        spec = asymmetric_path(SMALL_PATH, reverse_rate_fraction=0.25)
        bottleneck = spec.topology.links[0]
        assert bottleneck.rate_ba_bps == pytest.approx(
            0.25 * SMALL_PATH.bottleneck_rate_bps)

    def test_mismatched_cc_list_rejected(self):
        with pytest.raises(ExperimentError, match="one per flow"):
            dumbbell(SMALL_PATH, 3, ccs=("reno",))

    def test_from_bulk_flows_shapes(self):
        flows = [BulkFlowSpec(cc="reno"), BulkFlowSpec(cc="restricted")]
        spec = from_bulk_flows(flows, config=SMALL_PATH)
        assert [f.src for f in spec.flows] == ["sender0", "sender1"]
        shared = from_bulk_flows(flows, config=SMALL_PATH, shared_paths=True)
        assert [f.src for f in shared.flows] == ["sender0", "sender0"]
        with pytest.raises(ExperimentError, match="at least one flow"):
            from_bulk_flows([], config=SMALL_PATH)

    def test_from_bulk_flows_honours_explicit_path_index(self):
        flows = [BulkFlowSpec(cc="reno", path_index=1),
                 BulkFlowSpec(cc="reno", path_index=1)]
        spec = from_bulk_flows(flows, config=SMALL_PATH)
        assert [f.src for f in spec.flows] == ["sender1", "sender1"]
        with pytest.raises(ExperimentError, match="out of range"):
            from_bulk_flows([BulkFlowSpec(path_index=5)], config=SMALL_PATH)


class TestFluidCompatibility:
    def test_canonical_dumbbell_is_fluid_clean(self):
        assert fluid_unsupported_features(dumbbell(SMALL_PATH, 1)) == []
        RunSpec(scenario=dumbbell(SMALL_PATH, 1), backend="fluid")  # no raise

    @pytest.mark.parametrize("spec,feature", [
        (dumbbell(SMALL_PATH, 2), "flows"),
        (parking_lot(SMALL_PATH, 3), "routers"),
        (lossy_link(SMALL_PATH, loss=0.01), "loss"),
        (asymmetric_path(SMALL_PATH), "asymmetric"),
        (shared_path(SMALL_PATH, 2), "flows"),
    ], ids=["multi-flow", "parking-lot", "lossy", "asymmetric", "shared"])
    def test_unsupported_features_are_named(self, spec, feature):
        features = " ".join(fluid_unsupported_features(spec))
        assert feature in features
        with pytest.raises(UnsupportedScenarioError, match=feature):
            RunSpec(scenario=spec, backend="fluid")

    def test_cross_traffic_is_named(self):
        base = dumbbell(SMALL_PATH, 1)
        spec = base.replace(cross_traffic=(
            CrossTrafficSpec("sender0", "receiver0"),))
        assert "cross traffic" in " ".join(fluid_unsupported_features(spec))

    def test_packet_backend_accepts_any_scenario(self):
        RunSpec(scenario=parking_lot(SMALL_PATH, 3))  # no raise
