"""Tests for the scenario compiler (declared spec → live simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import Router
from repro.sim import Simulator
from repro.spec import (
    CrossTrafficSpec,
    MultiFlowSpec,
    RunSpec,
    asymmetric_path,
    dumbbell,
    execute,
    lossy_link,
    parking_lot,
    shared_path,
)
from repro.testing import SMALL_PATH, TINY_PATH
from repro.workloads import build_dumbbell
from repro.workloads.compile import compile_scenario, compile_topology, core_drops


class TestCompileTopology:
    def test_dumbbell_structure_matches_legacy_builder(self):
        """The compiled canonical dumbbell is structurally identical to the
        legacy ``build_dumbbell`` output: same names, addresses, queue
        capacities and link ordering."""
        legacy = build_dumbbell(Simulator(seed=1), SMALL_PATH, n_flows=2)
        sim = Simulator(seed=1)
        topo, nodes = compile_topology(sim, dumbbell(SMALL_PATH, 2).topology)
        assert list(topo.nodes) == list(legacy.topology.nodes)
        for name in topo.nodes:
            assert topo.nodes[name].address == legacy.topology.nodes[name].address
        assert len(topo.links) == len(legacy.topology.links)
        for built, old in zip(topo.links, legacy.topology.links):
            assert built.rate_bps == old.rate_bps
            assert built.delay_s == old.delay_s
            assert (built.iface_ab.queue.capacity_packets
                    == old.iface_ab.queue.capacity_packets)
            assert (built.iface_ba.queue.capacity_packets
                    == old.iface_ba.queue.capacity_packets)

    def test_roles_map_to_node_classes(self):
        sim = Simulator(seed=1)
        _topo, nodes = compile_topology(sim, parking_lot(SMALL_PATH, 2).topology)
        assert isinstance(nodes["r0"], Router)
        assert not isinstance(nodes["src0"], Router)

    def test_asymmetric_reverse_rate_lands_on_reverse_interface(self):
        sim = Simulator(seed=1)
        spec = asymmetric_path(SMALL_PATH, reverse_rate_fraction=0.5)
        topo, _nodes = compile_topology(sim, spec.topology)
        bottleneck = topo.links[0]
        assert bottleneck.iface_ab.rate_bps == SMALL_PATH.bottleneck_rate_bps
        assert bottleneck.iface_ba.rate_bps == pytest.approx(
            0.5 * SMALL_PATH.bottleneck_rate_bps)


class TestCanonicalEquivalence:
    def test_run_spec_with_canonical_scenario_is_bit_for_bit(self):
        """A RunSpec with scenario=dumbbell(cfg, 1) reproduces the
        scenario-less (legacy-path) run exactly."""
        base = RunSpec(cc="reno", config=SMALL_PATH, duration=2.0, seed=3)
        declared = RunSpec(cc="reno", duration=2.0, seed=3,
                           scenario=dumbbell(SMALL_PATH, 1))
        a, b = execute(base), execute(declared)
        assert a.flow.bytes_acked == b.flow.bytes_acked
        assert a.flow.send_stalls == b.flow.send_stalls
        assert a.ifq_peak == b.ifq_peak and a.ifq_drops == b.ifq_drops
        assert a.bottleneck_drops == b.bottleneck_drops
        assert np.array_equal(a.cwnd_segments, b.cwnd_segments)
        assert np.array_equal(a.ifq_occupancy, b.ifq_occupancy)
        assert np.array_equal(a.acked_bytes, b.acked_bytes)

    def test_restricted_run_with_scenario_is_bit_for_bit(self):
        base = RunSpec(cc="restricted", config=SMALL_PATH, duration=2.0, seed=2)
        declared = base.replace(scenario=dumbbell(SMALL_PATH, 1))
        a, b = execute(base), execute(declared)
        assert a.flow.bytes_acked == b.flow.bytes_acked
        assert np.array_equal(a.ifq_occupancy, b.ifq_occupancy)

    def test_multi_flow_scenario_matches_legacy_flows_form(self):
        from repro.workloads import BulkFlowSpec
        from repro.spec import from_bulk_flows

        flows = (BulkFlowSpec(cc="restricted"),
                 BulkFlowSpec(cc="reno", start_time=0.1))
        legacy = execute(MultiFlowSpec(flows=flows, config=SMALL_PATH,
                                       duration=2.0, seed=2))
        declared = execute(MultiFlowSpec(
            scenario=from_bulk_flows(flows, config=SMALL_PATH),
            duration=2.0, seed=2))
        assert ([f.bytes_acked for f in legacy.flows]
                == [f.bytes_acked for f in declared.flows])
        assert legacy.jain_index == declared.jain_index
        assert legacy.bottleneck_drops == declared.bottleneck_drops
        assert legacy.total_send_stalls == declared.total_send_stalls


class TestScenarioExecution:
    def test_parking_lot_runs_with_mixed_ccs(self):
        spec = MultiFlowSpec(
            scenario=parking_lot(TINY_PATH, 3, long_cc="reno",
                                 cross_ccs=("restricted", "reno", "cubic")),
            duration=1.5, seed=1)
        result = execute(spec)
        assert len(result.flows) == 4
        assert [f.algorithm for f in result.flows] == [
            "reno", "restricted", "reno", "cubic"]
        assert all(np.isfinite(f.goodput_bps) and f.goodput_bps > 0
                   for f in result.flows)
        assert 0.0 < result.jain_index <= 1.0
        assert result.spec == spec

    def test_multi_bottleneck_utilization_stays_bounded(self):
        # aggregate goodput spans several core links; the reported
        # utilisation is normalised by the total core capacity
        result = execute(MultiFlowSpec(
            scenario=parking_lot(TINY_PATH, 3), duration=2.0, seed=1))
        assert 0.0 < result.link_utilization <= 1.0

    def test_long_flow_sees_more_contention_than_cross_flows(self):
        result = execute(MultiFlowSpec(
            scenario=parking_lot(TINY_PATH, 3), duration=2.0, seed=1))
        long_flow, cross = result.flows[0], result.flows[1:]
        # the long flow crosses all three bottlenecks, so it cannot beat the
        # best single-hop cross flow
        assert long_flow.goodput_bps <= 1.05 * max(f.goodput_bps for f in cross)

    def test_lossy_link_drops_packets(self):
        result = execute(RunSpec(duration=2.0, seed=1,
                                 scenario=lossy_link(TINY_PATH, loss=0.05)))
        # corruption loss shows up as retransmissions, not queue drops
        assert result.flow.pkts_retrans > 0

    def test_shared_path_flows_share_one_ifq(self):
        result = execute(MultiFlowSpec(
            scenario=shared_path(TINY_PATH, 2, ccs="reno"),
            duration=1.5, seed=1))
        assert len(result.flows) == 2
        assert all(f.bytes_acked > 0 for f in result.flows)

    def test_cross_traffic_reduces_goodput(self):
        quiet = execute(RunSpec(duration=1.5, seed=1,
                                scenario=dumbbell(TINY_PATH, 1)))
        noisy_scenario = dumbbell(TINY_PATH, 1).replace(cross_traffic=(
            CrossTrafficSpec(src="sender0", dst="receiver0", kind="cbr",
                             rate_fraction=0.5),))
        noisy = execute(RunSpec(duration=1.5, seed=1, scenario=noisy_scenario))
        assert noisy.flow.goodput_bps < quiet.flow.goodput_bps

    def test_scenario_results_save_and_reload(self, tmp_path):
        from repro.experiments.results_io import load_result, save_result
        from repro.spec import load_spec

        spec = MultiFlowSpec(scenario=parking_lot(TINY_PATH, 2),
                             duration=1.0, seed=1)
        result = execute(spec)
        path = save_result(result, tmp_path / "pl.json")
        document = load_result(path)
        assert document["cache_key"] == spec.cache_key()
        assert load_spec(path) == spec

    def test_bare_scenario_executes_as_multi_flow(self):
        import dataclasses

        scenario = dumbbell(TINY_PATH, 2)
        scenario = scenario.replace(flows=tuple(
            dataclasses.replace(f, total_bytes=20_000) for f in scenario.flows))
        result = execute(scenario)
        assert len(result.flows) == 2
        assert all(f.bytes_acked == 20_000 for f in result.flows)

    def test_core_drops_sums_router_router_queues(self):
        sim = Simulator(seed=1)
        scenario = compile_scenario(sim, parking_lot(TINY_PATH, 2))
        sim.run(until=1.0)
        assert core_drops(scenario.topology) >= 0

    def test_routerless_direct_link_scenario_runs(self):
        from repro.spec import FlowSpec, LinkSpec, NodeSpec, ScenarioSpec, TopologySpec

        spec = ScenarioSpec(
            name="direct", config=TINY_PATH,
            topology=TopologySpec(
                nodes=(NodeSpec("a"), NodeSpec("b")),
                links=(LinkSpec("a", "b", TINY_PATH.bottleneck_rate_bps, 0.005,
                                queue_ab_packets=TINY_PATH.ifq_capacity_packets),)),
            flows=(FlowSpec("a", "b"),))
        result = execute(MultiFlowSpec(scenario=spec, duration=1.0, seed=1))
        assert result.flows[0].bytes_acked > 0
        assert 0.0 < result.link_utilization <= 1.0

    def test_two_router_utilization_uses_declared_link_rate(self):
        import dataclasses

        # halve the declared bottleneck rate without touching the config;
        # utilisation must be computed against the declared link
        spec = dumbbell(TINY_PATH, 1)
        links = list(spec.topology.links)
        links[0] = dataclasses.replace(links[0],
                                       rate_bps=links[0].rate_bps / 2)
        spec = spec.replace(topology=dataclasses.replace(
            spec.topology, links=tuple(links)))
        result = execute(MultiFlowSpec(scenario=spec, duration=1.5, seed=1))
        assert 0.0 < result.link_utilization <= 1.0
        # at half the capacity the link should be reasonably busy
        assert result.link_utilization > 0.3

    def test_restricted_flow_cc_kwargs_override_controller_config(self):
        from repro.spec import FlowSpec
        import dataclasses

        base = dumbbell(SMALL_PATH, 1, ccs="restricted")
        tuned = base.replace(flows=(dataclasses.replace(
            base.flows[0], cc_kwargs={"setpoint_fraction": 0.4}),))
        default = execute(MultiFlowSpec(scenario=base, duration=2.0, seed=1))
        lowered = execute(MultiFlowSpec(scenario=tuned, duration=2.0, seed=1))
        # a lower set point keeps the queue emptier, so the runs must differ
        assert (lowered.flows[0].bytes_acked != default.flows[0].bytes_acked
                or lowered.flows[0].max_cwnd_bytes
                != default.flows[0].max_cwnd_bytes)
        with pytest.raises(Exception, match="RestrictedSlowStartConfig"):
            execute(MultiFlowSpec(scenario=base.replace(flows=(
                dataclasses.replace(base.flows[0],
                                    cc_kwargs={"warp": 9}),)),
                duration=1.0, seed=1))


class TestFlowDurationStopHook:
    """``FlowSpec.duration`` must actually stop the sender (the historical
    bug: a declared stop time validated at spec time but changed nothing
    at compile time — a spec that changes nothing must never load
    silently)."""

    def _scenario_with_duration(self, duration):
        import dataclasses

        base = dumbbell(TINY_PATH, 1)
        return base.replace(flows=(
            dataclasses.replace(base.flows[0], duration=duration),))

    def test_packet_flow_stops_at_declared_duration(self):
        stopped = execute(MultiFlowSpec(
            scenario=self._scenario_with_duration(1.0), duration=4.0, seed=1))
        unbounded = execute(MultiFlowSpec(
            scenario=dumbbell(TINY_PATH, 1), duration=4.0, seed=1))
        flow = stopped.flows[0]
        # the transfer is over (and counted complete) right after the stop
        assert flow.completion_time is not None
        assert flow.completion_time == pytest.approx(1.0, abs=0.5)
        assert flow.bytes_acked < unbounded.flows[0].bytes_acked / 2

    def test_primary_run_spec_flow_honours_duration(self):
        result = execute(RunSpec(
            scenario=self._scenario_with_duration(1.0), duration=4.0, seed=1))
        assert result.flow.completion_time == pytest.approx(1.0, abs=0.5)

    def test_packet_and_fluid_agree_on_stopped_transfer(self):
        scenario = self._scenario_with_duration(1.5)
        packet = execute(RunSpec(scenario=scenario, duration=4.0, seed=1))
        fluid = execute(RunSpec(scenario=scenario, duration=4.0,
                                backend="fluid"))
        assert fluid.flow.completion_time == pytest.approx(
            packet.flow.completion_time, abs=0.5)
        assert fluid.flow.bytes_acked == pytest.approx(
            packet.flow.bytes_acked, rel=0.3)

    def test_second_flow_keeps_running_after_first_stops(self):
        import dataclasses

        base = dumbbell(TINY_PATH, 2, ccs="reno")
        scenario = base.replace(flows=(
            dataclasses.replace(base.flows[0], duration=1.0),
            base.flows[1]))
        result = execute(MultiFlowSpec(scenario=scenario, duration=4.0,
                                       seed=1))
        stopped, running = result.flows
        assert running.bytes_acked > stopped.bytes_acked

    def test_flow_duration_validation(self):
        import dataclasses

        base = dumbbell(TINY_PATH, 1)
        with pytest.raises(Exception, match="duration must be positive"):
            dataclasses.replace(base.flows[0], duration=-1.0)
        flow = dataclasses.replace(base.flows[0], duration=2.5)
        assert flow.stop_time == pytest.approx(flow.start_time + 2.5)

    def test_stop_inside_handshake_still_completes(self):
        # a duration shorter than the handshake RTT must not leave the flow
        # dangling: it completes at the stop with zero payload on every
        # engine (regression: on_all_acked never fires once stop() has
        # emptied the send buffer during the handshake)
        scenario = self._scenario_with_duration(0.001)
        packet = execute(RunSpec(scenario=scenario, duration=2.0, seed=1))
        fluid = execute(RunSpec(scenario=scenario, duration=2.0,
                                backend="fluid"))
        multi = execute(MultiFlowSpec(scenario=scenario, duration=2.0,
                                      backend="fluid"))
        for completion, bytes_acked in (
                (packet.flow.completion_time, packet.flow.bytes_acked),
                (fluid.flow.completion_time, fluid.flow.bytes_acked),
                (multi.flows[0].completion_time, multi.flows[0].bytes_acked)):
            assert completion == pytest.approx(0.001)
            assert bytes_acked == 0
