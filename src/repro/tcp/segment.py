"""TCP segment model.

A :class:`TCPSegment` is a :class:`~repro.net.packet.Packet` carrying the
header fields the simulated stack actually uses: sequence/acknowledgement
numbers, SYN/FIN/ACK flags, a receiver-window advertisement and RFC 7323
style timestamps (used for RTT sampling without Karn ambiguity).
"""

from __future__ import annotations

from ..net.address import Address, FlowId
from ..net.packet import PROTO_TCP, Packet
from ..units import DEFAULT_HEADER_BYTES

__all__ = ["TCPSegment"]


class TCPSegment(Packet):
    """A TCP segment (data, ACK, SYN or FIN)."""

    __slots__ = (
        "seq",
        "ack",
        "payload_bytes",
        "syn",
        "fin",
        "ack_flag",
        "rwnd",
        "ts_val",
        "ts_ecr",
        "retransmission",
        "ece",
        "cwr",
    )

    def __init__(
        self,
        src: Address,
        dst: Address,
        flow: FlowId,
        seq: int,
        ack: int,
        payload_bytes: int = 0,
        syn: bool = False,
        fin: bool = False,
        ack_flag: bool = True,
        rwnd: int = 0,
        ts_val: float = 0.0,
        ts_ecr: float = 0.0,
        header_bytes: int = DEFAULT_HEADER_BYTES,
        created_at: float = 0.0,
        retransmission: bool = False,
        ece: bool = False,
        cwr: bool = False,
        ecn: int = 0,
    ) -> None:
        super().__init__(
            size_bytes=payload_bytes + header_bytes,
            src=src,
            dst=dst,
            flow=flow,
            protocol=PROTO_TCP,
            created_at=created_at,
            ecn=ecn,
        )
        #: First sequence number covered by this segment.
        self.seq = seq
        #: Cumulative acknowledgement number (next byte expected by sender of
        #: this segment).
        self.ack = ack
        #: Payload length in bytes (0 for pure ACKs and bare SYN/FIN).
        self.payload_bytes = payload_bytes
        self.syn = syn
        self.fin = fin
        self.ack_flag = ack_flag
        #: Receiver window advertisement in bytes.
        self.rwnd = rwnd
        #: Timestamp value (sender clock) and echo reply, RFC 7323 style.
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        #: True when this segment is a retransmission (diagnostics only).
        self.retransmission = retransmission
        #: RFC 3168 ECN header flags.  ``ece`` echoes congestion back to the
        #: sender (also the ECN-setup flag on SYN/SYN-ACK); ``cwr`` tells
        #: the receiver the sender reacted, stopping the ECE echo.
        self.ece = ece
        self.cwr = cwr

    # ------------------------------------------------------------------
    @property
    def seq_space(self) -> int:
        """Sequence space consumed: payload plus one for SYN and one for FIN."""
        return self.payload_bytes + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """Sequence number one past the last byte covered by this segment."""
        return self.seq + self.seq_space

    @property
    def is_pure_ack(self) -> bool:
        """True for segments carrying neither payload nor SYN/FIN."""
        return self.payload_bytes == 0 and not self.syn and not self.fin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f for f, present in (("S", self.syn), ("F", self.fin), (".", self.ack_flag)) if present
        )
        return (
            f"<TCPSegment {self.src}->{self.dst} seq={self.seq} ack={self.ack} "
            f"len={self.payload_bytes} [{flags}]>"
        )
