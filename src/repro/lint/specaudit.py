"""Reflection-based spec auditor (``repro lint --specs``).

The campaign cache addresses results by ``spec.cache_key()``, so every
registered spec kind must uphold the same hygiene contract the golden-key
tests pin for today's kinds — and must keep upholding it when a future PR
registers a new kind.  This auditor walks the live registry
(:data:`repro.spec.specs.SPEC_KINDS`, lazy kinds imported first) and
verifies, for each kind's example instance:

========  ==================================================================
code      contract
========  ==================================================================
SPEC001   the class is a frozen dataclass (specs are value objects)
SPEC002   ``from_dict(to_dict())`` reconstructs the spec field-by-field
SPEC003   unknown document fields are rejected loudly (typo safety)
SPEC004   ``cache_key()`` is stable across a JSON round trip
SPEC005   the ``kind`` tag dispatches back to the same class, and an
          example instance is constructible at all
========  ==================================================================

New kinds are covered automatically: the registry is the source of truth,
and a kind whose defaults cannot construct provides a minimal
``example()`` classmethod (see :meth:`repro.spec.SpecBase.example`).
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import TYPE_CHECKING, Any

from ..errors import ReproError
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spec.specs import SpecBase

__all__ = ["SPEC_AUDIT_CODES", "audit_specs"]

#: One-line summary per audit code (mirrors the module docstring table).
SPEC_AUDIT_CODES: dict[str, str] = {
    "SPEC001": "spec class must be a frozen dataclass",
    "SPEC002": "to_dict/from_dict must round-trip field-by-field",
    "SPEC003": "unknown document fields must be rejected",
    "SPEC004": "cache_key must be stable across a JSON round trip",
    "SPEC005": "kind tag must dispatch back to the class; example must construct",
}

#: A field name no real spec will ever grow, used to probe SPEC003.
_PROBE_FIELD = "repro_lint_unknown_field_probe"


def _finding(kind: str, code: str, message: str) -> Finding:
    return Finding(path="<specs>", line=1, column=0, code=code,
                   message=f"spec kind {kind!r}: {message}", snippet=kind)


def _registered_kinds() -> dict[str, type["SpecBase"]]:
    """The full registry, lazy kinds imported so the walk is complete."""
    from ..spec.specs import _LAZY_KINDS, SPEC_KINDS

    for kind, module in _LAZY_KINDS.items():
        if kind not in SPEC_KINDS:
            importlib.import_module(module)
    return dict(SPEC_KINDS)


def _audit_kind(kind: str, cls: type["SpecBase"]) -> list[Finding]:
    findings: list[Finding] = []

    # SPEC001 — frozen dataclass
    if not dataclasses.is_dataclass(cls):
        findings.append(_finding(kind, "SPEC001",
                                 f"{cls.__name__} is not a dataclass"))
        return findings
    params = getattr(cls, "__dataclass_params__", None)
    if params is None or not params.frozen:
        findings.append(_finding(
            kind, "SPEC001",
            f"{cls.__name__} is not frozen: specs are value objects whose "
            "identity is their cache_key — a mutable spec can drift from "
            "the key its result was stored under"))

    # SPEC005 (construction half) — an example instance must be buildable
    try:
        example: "SpecBase" = cls.example()
    except Exception as exc:  # noqa: BLE001 - report, don't crash the audit
        findings.append(_finding(
            kind, "SPEC005",
            f"cannot construct an example instance ({type(exc).__name__}: "
            f"{exc}); give {cls.__name__} a minimal example() classmethod"))
        return findings

    # SPEC005 (dispatch half) — the kind tag must map back to the class
    document = example.to_dict()
    if document.get("kind") != kind:
        findings.append(_finding(
            kind, "SPEC005",
            f"to_dict() tags the document {document.get('kind')!r}, not the "
            "registered kind"))
    from ..spec.specs import spec_from_dict

    try:
        decoded = spec_from_dict(document)
    except ReproError as exc:
        findings.append(_finding(
            kind, "SPEC002", f"from_dict rejects its own to_dict output: {exc}"))
        return findings
    if type(decoded) is not cls:
        findings.append(_finding(
            kind, "SPEC005",
            f"spec_from_dict dispatched the {kind!r} document to "
            f"{type(decoded).__name__}, not {cls.__name__}"))
        return findings

    # SPEC002 — field-by-field round trip
    for f in dataclasses.fields(cls):
        original = getattr(example, f.name)
        rebuilt = getattr(decoded, f.name)
        if not _equivalent(original, rebuilt):
            findings.append(_finding(
                kind, "SPEC002",
                f"field {f.name!r} does not survive to_dict/from_dict: "
                f"{original!r} became {rebuilt!r}"))
    if decoded != example:
        findings.append(_finding(
            kind, "SPEC002",
            "decoded spec compares unequal to the original (check __eq__ "
            "and normalisation in __post_init__)"))

    # SPEC003 — unknown fields must be rejected
    try:
        spec_from_dict({**document, _PROBE_FIELD: 1})
    except ReproError:
        pass
    else:
        findings.append(_finding(
            kind, "SPEC003",
            "a document with an unknown field decodes silently; route "
            "from_dict through repro.spec.specs._checked so typos fail "
            "loudly instead of being dropped (they would change nothing "
            "but the user's intent)"))

    # SPEC004 — cache-key stability across serialization
    key = example.cache_key()
    if decoded.cache_key() != key:
        findings.append(_finding(
            kind, "SPEC004",
            "cache_key changes across a to_dict/from_dict round trip — "
            "stored results would never be found again"))
    from ..spec.specs import spec_from_json

    if spec_from_json(example.to_json()).cache_key() != key:
        findings.append(_finding(
            kind, "SPEC004",
            "cache_key changes across a JSON text round trip"))
    return findings


def _equivalent(a: Any, b: Any) -> bool:
    """Field equality, treating numerically-equal int/float as the same
    (cache keys canonicalise integral floats, so decoding may too)."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        return float(a) == float(b)
    if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
        return all(_equivalent(x, y) for x, y in zip(a, b))
    return bool(a == b)


def audit_specs() -> list[Finding]:
    """Audit every registered spec kind; returns the (sorted) findings."""
    findings: list[Finding] = []
    for kind, cls in sorted(_registered_kinds().items()):
        findings.extend(_audit_kind(kind, cls))
    return sorted(findings)
