"""Time-series manipulation helpers for experiment post-processing."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ExperimentError

__all__ = ["resample_step", "cumulative_count_series", "series_mean", "downsample"]


def resample_step(
    times: Sequence[float],
    values: Sequence[float],
    grid: Sequence[float],
    left: float = 0.0,
) -> np.ndarray:
    """Sample a piecewise-constant (step) series onto ``grid``.

    The value at a grid point is the most recent sample at or before it;
    grid points before the first sample take ``left``.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    g = np.asarray(grid, dtype=float)
    if t.size != v.size:
        raise ExperimentError("times and values must have equal length")
    if t.size == 0:
        return np.full(g.shape, left)
    idx = np.searchsorted(t, g, side="right") - 1
    out = np.where(idx >= 0, v[np.clip(idx, 0, t.size - 1)], left)
    return out.astype(float)


def cumulative_count_series(event_times: Sequence[float], grid: Sequence[float]) -> np.ndarray:
    """Cumulative number of events at each grid time (Figure-1 style series)."""
    ev = np.sort(np.asarray(event_times, dtype=float))
    g = np.asarray(grid, dtype=float)
    return np.searchsorted(ev, g, side="right").astype(float)


def series_mean(times: Sequence[float], values: Sequence[float],
                t_start: float = 0.0, t_end: float | None = None) -> float:
    """Time-weighted mean of a step series over ``[t_start, t_end]``.

    Computed as the exact piecewise-constant integral divided by the window
    length: every step transition inside the window contributes its true
    dwell time, so dense series do not alias the way grid sampling would.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.size != v.size:
        raise ExperimentError("times and values must have equal length")
    if t.size == 0:
        return 0.0
    if t_end is None:
        t_end = float(t[-1])
    if t_end <= t_start:
        raise ExperimentError("t_end must exceed t_start")
    inner = t[(t > t_start) & (t < t_end)]
    edges = np.concatenate(([t_start], inner, [t_end]))
    level = resample_step(t, v, edges[:-1], left=float(v[0]))
    return float(np.sum(level * np.diff(edges)) / (t_end - t_start))


def downsample(times: Sequence[float], values: Sequence[float], max_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Thin a series to at most ``max_points`` (uniform stride)."""
    if max_points < 2:
        raise ExperimentError("max_points must be >= 2")
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.size <= max_points:
        return t, v
    stride = int(np.ceil(t.size / max_points))
    return t[::stride], v[::stride]
