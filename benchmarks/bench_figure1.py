"""E1 — regenerate the paper's Figure 1.

Cumulative send-stall signals over a 25-second bulk transfer on the
100 Mbit/s, 60 ms ANL–LBNL-like path: standard Linux TCP accumulates stalls,
restricted slow-start stays at (near) zero.
"""

from __future__ import annotations

from repro.experiments import render_figure1, run_figure1

from .conftest import emit, scaled


def test_figure1_cumulative_send_stalls(bench_once, benchmark):
    result = bench_once(run_figure1, duration=scaled(25.0), seed=1)
    emit(
        benchmark,
        render_figure1(result),
        standard_stalls=result.standard_total,
        proposed_stalls=result.proposed_total,
        shape_holds=result.shape_holds(),
    )
    # the paper's qualitative claim must hold: the proposed scheme stalls less
    assert result.shape_holds()
    assert result.standard_total >= 1
    assert result.proposed_total == 0
