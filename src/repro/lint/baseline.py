"""JSON baseline files: grandfather existing findings, ratchet them down.

A baseline records the findings a tree is *known* to have, by fingerprint
(code + file + offending source text, so plain line drift does not
invalidate entries).  ``repro lint --baseline FILE`` subtracts baselined
findings from the report; anything new still fails the run.  Entries whose
finding has disappeared are reported as *stale* so the file shrinks over
time — ``--update-baseline`` rewrites it from the current findings, which
is only ever a no-op or a shrink in CI (growth means a new violation, and
that should be fixed or pragma'd with a reason instead).
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from dataclasses import dataclass, field

from ..errors import ReproError
from .findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The parsed content of one baseline file."""

    #: fingerprint -> allowed multiplicity (one file can legitimately carry
    #: the same offending line twice).
    counts: Counter[str] = field(default_factory=Counter)
    #: fingerprint -> human-readable entry (for stale reporting).
    entries: dict[str, dict[str, object]] = field(default_factory=dict)

    def partition(self, findings: list[Finding]) -> tuple[
            list[Finding], list[Finding], list[dict[str, object]]]:
        """Split findings into (active, baselined); also report stale entries.

        Multiplicity is respected: two identical offending lines consume
        two baseline slots.  The third element lists baseline entries whose
        finding no longer exists — candidates for removal.
        """
        budget = Counter(self.counts)
        active: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in sorted(findings):
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                suppressed.append(finding)
            else:
                active.append(finding)
        stale = [self.entries[fp] for fp, left in sorted(budget.items())
                 if left > 0 and fp in self.entries]
        return active, suppressed, stale


def load_baseline(path: str | pathlib.Path) -> Baseline:
    """Load a baseline file (see :func:`write_baseline` for the layout)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ReproError(f"no baseline file at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt baseline file {path}: {exc}") from exc
    if not isinstance(document, dict) or "findings" not in document:
        raise ReproError(
            f"baseline file {path} must be an object with a 'findings' list")
    baseline = Baseline()
    for entry in document["findings"]:
        fp = entry.get("fingerprint")
        if not isinstance(fp, str) or not fp:
            raise ReproError(
                f"baseline entry without a fingerprint in {path}: {entry!r}")
        baseline.counts[fp] += int(entry.get("count", 1))
        baseline.entries.setdefault(fp, dict(entry))
    return baseline


def write_baseline(findings: list[Finding],
                   path: str | pathlib.Path) -> pathlib.Path:
    """Write ``findings`` as a baseline file; returns the path.

    Entries are grouped by fingerprint with a multiplicity count, sorted
    for stable diffs.
    """
    by_fp: dict[str, dict[str, object]] = {}
    counts: Counter[str] = Counter()
    for finding in sorted(findings):
        fp = finding.fingerprint()
        counts[fp] += 1
        by_fp.setdefault(fp, {
            "fingerprint": fp,
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "snippet": finding.snippet,
        })
    entries = []
    for fp, entry in sorted(by_fp.items(), key=lambda kv: (
            str(kv[1]["path"]), int(kv[1]["line"]), str(kv[1]["code"]))):
        if counts[fp] > 1:
            entry["count"] = counts[fp]
        entries.append(entry)
    document = {"version": _FORMAT_VERSION, "findings": entries}
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
