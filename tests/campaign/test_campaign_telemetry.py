"""Campaign observability: per-unit walls/telemetry, progress, parity.

The load-bearing regression here is serial/pool parity: the pool path of
``_compute_documents`` used to discard per-unit wall seconds on its
store-write loop, so manifests depended on how the campaign happened to be
scheduled.  Both paths must now report identically.
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.run import campaign_status
from repro.spec import RunSpec
from repro.testing import SMALL_PATH


def two_unit_campaign() -> CampaignSpec:
    return CampaignSpec(name="obs", units=tuple(
        RunSpec(config=SMALL_PATH, duration=0.5, seed=seed) for seed in (1, 2)))


def test_serial_and_pool_paths_report_identically(tmp_path):
    spec = two_unit_campaign()
    serial = run_campaign(spec, ResultStore(tmp_path / "serial"), max_workers=0)
    pooled = run_campaign(spec, ResultStore(tmp_path / "pool"), max_workers=2)
    for manifest in (serial, pooled):
        assert [u.status for u in manifest.units] == ["computed", "computed"]
        # the parity pin: every computed unit records its wall seconds and
        # its telemetry sidecar, regardless of execution path
        assert all(u.wall_s > 0 for u in manifest.units)
        assert all(u.telemetry is not None for u in manifest.units)
        assert all(u.events_per_s > 0 for u in manifest.units)
    # same units in the same (input) order
    assert ([u.cache_key for u in serial.units]
            == [u.cache_key for u in pooled.units])


def test_progress_fires_per_miss_with_wall_and_telemetry(tmp_path):
    beats = []
    run_campaign(two_unit_campaign(), ResultStore(tmp_path), max_workers=0,
                 progress=lambda report, done, total:
                 beats.append((done, total, report.status, report.wall_s)))
    assert [(done, total, status) for done, total, status, _ in beats] \
        == [(1, 2, "computed"), (2, 2, "computed")]
    assert all(wall > 0 for *_, wall in beats)


def test_hits_recover_telemetry_from_stored_documents(tmp_path):
    store = ResultStore(tmp_path)
    spec = two_unit_campaign()
    run_campaign(spec, store, max_workers=0)
    rerun = run_campaign(spec, store, max_workers=0)
    assert [u.status for u in rerun.units] == ["hit", "hit"]
    assert all(u.telemetry is not None for u in rerun.units)
    # ... so a pure status inspection still aggregates what the campaign cost
    status = campaign_status(spec, store)
    merged = status.aggregate_telemetry()
    assert merged is not None and merged.counters["events"] > 0
    assert "simulate" in merged.spans


def test_manifest_document_carries_unit_and_aggregate_telemetry(tmp_path):
    manifest = run_campaign(two_unit_campaign(), ResultStore(tmp_path),
                            max_workers=0)
    document = manifest.to_dict()
    assert all("telemetry" in unit for unit in document["units"])
    assert document["telemetry"]["counters"]["events"] > 0
    rendered = manifest.render_telemetry()
    assert "2/2 units instrumented" in rendered
    assert "ev/s" in manifest.render()
