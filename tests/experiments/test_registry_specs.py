"""Registry consistency: every entry's derived spec actually runs.

Replaces the old kwarg-shim assumptions (``config_kwarg``/``duration_kwarg``
string indirection) with direct checks on the declarative specs: each
spec-carrying experiment runs under both backends on a small grid, the
fluid variants are literal ``with_backend("fluid")`` derivations, and the
legacy runners (E7..E9) keep the uniform keyword surface the registry's
``run()`` relies on.
"""

from __future__ import annotations

import dataclasses
import inspect

import pytest

from repro.errors import ExperimentError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.registry import ExperimentSpec
from repro.experiments.sweeps import SweepResult
from repro.spec import SweepSpec, execute, spec_from_json
from repro.testing import SMALL_PATH

SPEC_IDS = [entry.experiment_id for entry in all_experiments()
            if entry.spec is not None and entry.base_id is None]
#: Spec entries that can derive a fluid variant (excludes packet-only
#: multi-flow scenario entries such as the parking lot).
FLUID_CAPABLE_IDS = [experiment_id for experiment_id in SPEC_IDS
                     if getattr(get_experiment(experiment_id).spec,
                                "scenario", None) is None]
SCENARIO_IDS = sorted(set(SPEC_IDS) - set(FLUID_CAPABLE_IDS))
LEGACY_IDS = [entry.experiment_id for entry in all_experiments()
              if entry.spec is None]


def _shrunk(spec):
    """Scale a registry spec down to a fast two-point grid on SMALL_PATH."""
    spec = spec.with_config(SMALL_PATH).with_duration(1.5).with_seed(2)
    if isinstance(spec, SweepSpec):
        field_values = (spec.field_values[:2]
                        if spec.field_values is not None else None)
        spec = spec.replace(values=spec.values[:2], field_values=field_values)
    return spec


class TestSpecEntries:
    @pytest.mark.parametrize("experiment_id", FLUID_CAPABLE_IDS)
    def test_runs_under_both_backends(self, experiment_id):
        entry = get_experiment(experiment_id)
        for backend in ("packet", "fluid"):
            spec = _shrunk(entry.spec).with_backend(backend)
            result = execute(spec, max_workers=1)
            if isinstance(spec, SweepSpec):
                assert isinstance(result, SweepResult)
                assert len(result.rows) == len(spec.values)
                assert all(spec.row_key in row for row in result.rows)
            else:
                assert set(result.runs) == set(spec.algorithms)
                for run in result.runs.values():
                    assert run.backend == backend
                    assert run.flow.bytes_acked > 0
            assert result.spec == spec

    @pytest.mark.parametrize("experiment_id", SPEC_IDS)
    def test_spec_round_trips(self, experiment_id):
        entry = get_experiment(experiment_id)
        clone = spec_from_json(entry.spec.to_json())
        assert clone == entry.spec
        assert clone.cache_key() == entry.spec.cache_key()

    def test_run_applies_uniform_overrides(self):
        result = get_experiment("E2").run(config=SMALL_PATH, duration=1.5,
                                          seed=2, backend="fluid")
        assert result.duration == 1.5
        assert result.comparison.runs["reno"].backend == "fluid"

    def test_run_rejects_unknown_overrides(self):
        with pytest.raises(ExperimentError, match="unknown override"):
            get_experiment("E3").run(config=SMALL_PATH, warp=9)

    def test_pinned_variant_rejects_other_backend(self):
        with pytest.raises(ExperimentError, match="pinned"):
            get_experiment("E2F").run(config=SMALL_PATH, duration=1.0,
                                      backend="packet")


class TestScenarioEntries:
    """Registry entries whose spec carries a declared scenario (E11)."""

    def test_parking_lot_is_registered_packet_only(self):
        assert "E11" in SCENARIO_IDS
        entry = get_experiment("E11")
        assert entry.spec.scenario.name == "parking_lot"
        # no derived fluid variant exists for a multi-flow scenario
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("E11F")

    def test_parking_lot_runs_scaled_down(self):
        result = get_experiment("E11").run(duration=0.75, seed=2)
        assert len(result.flows) == 4
        assert all(f.goodput_bps > 0 for f in result.flows)
        assert 0.0 < result.jain_index <= 1.0

    def test_parking_lot_rejects_fluid(self):
        # multi-flow fluid exists now, but only for the canonical dumbbell:
        # the parking lot's shape is named in the rejection
        with pytest.raises(ExperimentError, match="packet backend instead"):
            get_experiment("E11").run(backend="fluid")


class TestLegacyEntries:
    def test_legacy_runners_keep_uniform_keywords(self):
        for experiment_id in LEGACY_IDS:
            entry = get_experiment(experiment_id)
            parameters = inspect.signature(entry.runner).parameters
            assert {"config", "duration", "seed"} <= set(parameters), experiment_id

    def test_legacy_entries_reject_backend_selection(self):
        # ... unless their runner takes a backend keyword (E9's fairness
        # runner dispatches its MultiFlowSpec points to either engine)
        for experiment_id in LEGACY_IDS:
            entry = get_experiment(experiment_id)
            if entry.backend_aware:
                continue
            with pytest.raises(ExperimentError, match="packet engine only"):
                entry.run(backend="fluid")
        assert get_experiment("E9").backend_aware

    def test_fairness_runner_accepts_fluid_backend(self):
        result = get_experiment("E9").run(
            config=SMALL_PATH, duration=2.0, seed=2, backend="fluid",
            flow_counts=(2,), mixes=("standard",))
        assert len(result.rows) == 1
        assert result.runs[(2, "standard")].backend == "fluid"

    def test_legacy_run_forwards_overrides(self):
        result = get_experiment("E8").run(
            config=SMALL_PATH, duration=1.5, seed=2,
            algorithms=("reno", "restricted"), max_workers=None)
        assert len(result.rows) == 2


class TestShimRemoval:
    def test_kwarg_shims_are_gone(self):
        stored = {f.name for f in dataclasses.fields(ExperimentSpec)}
        assert {"config_kwarg", "duration_kwarg",
                "backend_aware", "pinned_backend"}.isdisjoint(stored)
        entry = get_experiment("E3")
        assert not hasattr(entry, "config_kwarg")
        assert not hasattr(entry, "duration_kwarg")

    def test_every_entry_has_spec_or_runner(self):
        for entry in all_experiments():
            assert (entry.spec is None) != (entry.runner is None)
