"""Time-series tracers.

Experiments need the evolution of quantities over time — congestion window,
IFQ occupancy, cumulative send-stalls — to regenerate the paper's Figure 1
and the ablation plots.  :class:`TimeSeriesTracer` samples arbitrary probes
at a fixed period using the simulator's :class:`~repro.sim.timers.PeriodicTask`
and stores the results as NumPy-convertible columns.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.timers import PeriodicTask

__all__ = ["TimeSeries", "TimeSeriesTracer"]


class TimeSeries:
    """A named sequence of ``(time, value)`` samples."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, time: float, value: float) -> None:
        """Add one sample."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as float arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def last(self) -> float | None:
        """Most recent value (``None`` when empty)."""
        return self.values[-1] if self.values else None

    def value_at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time`` (0.0 if none)."""
        idx = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        if idx < 0:
            return 0.0
        return self.values[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name} n={len(self)}>"


class TimeSeriesTracer:
    """Samples named probes at a fixed interval.

    Parameters
    ----------
    sim:
        Simulator to schedule the sampling task on.
    interval:
        Sampling period in seconds.

    Usage::

        tracer = TimeSeriesTracer(sim, interval=0.1)
        tracer.add_probe("cwnd", lambda: conn.cwnd_bytes)
        tracer.add_probe("ifq", lambda: host.ifq_qlen)
        tracer.start()
        sim.run(until=25.0)
        times, cwnd = tracer.series("cwnd").as_arrays()
    """

    def __init__(self, sim: Simulator, interval: float = 0.1, name: str = "tracer") -> None:
        if interval <= 0:
            raise ConfigurationError("tracer interval must be positive")
        self.sim = sim
        self.interval = float(interval)
        self.name = name
        self._probes: dict[str, Callable[[], float]] = {}
        self._series: dict[str, TimeSeries] = {}
        self._task = PeriodicTask(sim, interval, self._sample, name=f"{name}.sampler")

    # ------------------------------------------------------------------
    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        """Register a probe; its value is recorded once per interval."""
        if name in self._probes:
            raise ConfigurationError(f"duplicate probe name {name!r}")
        self._probes[name] = probe
        self._series[name] = TimeSeries(name)

    def start(self, fire_now: bool = True) -> None:
        """Begin sampling (by default takes an immediate t=now sample)."""
        self._task.start(fire_now=fire_now)

    def stop(self) -> None:
        """Stop sampling."""
        self._task.stop()

    def _sample(self, now: float) -> None:
        for name, probe in self._probes.items():
            self._series[name].append(now, float(probe()))

    # ------------------------------------------------------------------
    def series(self, name: str) -> TimeSeries:
        """Return the recorded series for ``name``."""
        try:
            return self._series[name]
        except KeyError:
            raise ConfigurationError(f"unknown series {name!r}") from None

    def names(self) -> list[str]:
        """Names of registered probes."""
        return sorted(self._probes)

    def as_dict(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """All series as ``{name: (times, values)}`` arrays."""
        return {name: s.as_arrays() for name, s in self._series.items()}
