"""Tests for the AQM disciplines (CoDel, DualPI2) and ECN marking.

Also pins the shared accounting invariants across *all* disciplines:
arrivals == enqueued + dropped, byte counters balance, and a marked packet
is never also counted as a drop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net import (
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    CoDelQueue,
    DropTailQueue,
    DualPI2Queue,
    Packet,
    REDQueue,
    ecn_capable,
)


def make_packet(size=1500, ecn=ECN_NOT_ECT):
    return Packet(size, src=1, dst=2, ecn=ecn)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestEcnCodepoints:
    def test_capability(self):
        assert ecn_capable(make_packet(ecn=ECN_ECT0))
        assert ecn_capable(make_packet(ecn=ECN_ECT1))
        assert not ecn_capable(make_packet(ecn=ECN_NOT_ECT))
        assert not ecn_capable(make_packet(ecn=ECN_CE))

    def test_default_is_not_ect(self):
        assert make_packet().ecn == ECN_NOT_ECT


class TestByteCapacityIsFull:
    def test_is_full_honours_capacity_bytes(self):
        # regression: is_full used to consider only the packet-count limit
        q = DropTailQueue(100, capacity_bytes=3000)
        q.enqueue(make_packet(1500))
        assert not q.is_full
        q.enqueue(make_packet(1500))
        assert q.is_full
        assert len(q) == 2  # far below the packet-count limit


class TestCoDelQueue:
    def make_codel(self, clock, **kwargs):
        kwargs.setdefault("capacity_packets", 1000)
        return CoDelQueue(clock=clock, **kwargs)

    def fill(self, q, n, ecn=ECN_NOT_ECT):
        for _ in range(n):
            q.enqueue(make_packet(ecn=ecn))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CoDelQueue(target=0.0)
        with pytest.raises(ConfigurationError):
            CoDelQueue(interval=-1.0)

    def test_fifo_below_target(self):
        clock = FakeClock()
        q = self.make_codel(clock)
        packets = [make_packet() for _ in range(5)]
        for p in packets:
            q.enqueue(p)
        clock.advance(0.001)  # sojourn below the 5 ms target
        out = [q.dequeue() for _ in range(5)]
        assert [p.uid for p in out] == [p.uid for p in packets]
        assert q.head_drops == 0 and q.stats.dropped == 0

    def test_tail_drop_when_physically_full(self):
        q = CoDelQueue(capacity_packets=2, clock=FakeClock())
        self.fill(q, 3)
        assert q.stats.dropped == 1 and q.head_drops == 0

    def test_drops_after_sustained_delay(self):
        clock = FakeClock()
        q = self.make_codel(clock)
        # keep the queue standing above target for well over one interval
        for _ in range(60):
            q.enqueue(make_packet())
            clock.advance(0.01)
        delivered = 0
        while q.dequeue() is not None:
            delivered += 1
            clock.advance(0.01)
        assert q.head_drops > 0
        assert q.stats.dropped == q.head_drops
        assert delivered + q.head_drops == 60

    def test_marks_instead_of_drops_when_ecn(self):
        clock = FakeClock()
        q = self.make_codel(clock, ecn=True)
        for _ in range(60):
            q.enqueue(make_packet(ecn=ECN_ECT0))
            clock.advance(0.01)
        delivered = ce = 0
        while (p := q.dequeue()) is not None:
            delivered += 1
            if p.ecn == ECN_CE:
                ce += 1
            clock.advance(0.01)
        assert q.stats.marked > 0 and ce == q.stats.marked
        assert q.stats.dropped == 0 and q.head_drops == 0
        assert delivered == 60  # every packet survived

    def test_non_ect_still_dropped_when_ecn(self):
        clock = FakeClock()
        q = self.make_codel(clock, ecn=True)
        for _ in range(60):
            q.enqueue(make_packet(ecn=ECN_NOT_ECT))
            clock.advance(0.01)
        while q.dequeue() is not None:
            clock.advance(0.01)
        assert q.head_drops > 0 and q.stats.marked == 0


class TestDualPI2Queue:
    def make_dualpi2(self, clock, **kwargs):
        kwargs.setdefault("capacity_packets", 1000)
        kwargs.setdefault("rng", np.random.default_rng(7))
        return DualPI2Queue(clock=clock, **kwargs)

    def test_rng_required_by_signature(self):
        # rng is a required keyword-only parameter: the signature (and the
        # type checker), not a runtime raise, enforces the seeded-rng contract
        with pytest.raises(TypeError, match="rng"):
            DualPI2Queue(capacity_packets=10)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            DualPI2Queue(rng=rng, target=0.0)
        with pytest.raises(ConfigurationError):
            DualPI2Queue(rng=rng, coupling=0.0)

    def test_l4s_strict_priority(self):
        clock = FakeClock()
        q = self.make_dualpi2(clock)
        classic = make_packet(ecn=ECN_NOT_ECT)
        l4s = make_packet(ecn=ECN_ECT1)
        q.enqueue(classic)
        q.enqueue(l4s)
        assert q.dequeue() is l4s
        assert q.dequeue() is classic

    def test_step_threshold_marks_l4s(self):
        clock = FakeClock()
        q = self.make_dualpi2(clock)
        q.enqueue(make_packet(ecn=ECN_ECT1))
        clock.advance(0.002)  # above the 1 ms step threshold
        p = q.dequeue()
        assert p.ecn == ECN_CE
        assert q.l4s_marks == 1 and q.stats.marked == 1
        assert q.stats.dropped == 0

    def test_fast_l4s_packet_not_marked(self):
        clock = FakeClock()
        q = self.make_dualpi2(clock)
        q.enqueue(make_packet(ecn=ECN_ECT1))
        clock.advance(0.0001)
        assert q.dequeue().ecn == ECN_ECT1
        assert q.stats.marked == 0

    def test_pi_pressure_drops_classic(self):
        clock = FakeClock()
        q = self.make_dualpi2(clock, ecn=False)
        # sustain a standing classic queue far above target so p' winds up
        sent = 0
        for _ in range(400):
            q.enqueue(make_packet())
            sent += 1
            clock.advance(0.01)
            if len(q) > 20:
                q.dequeue()
        assert q.base_probability > 0.0
        assert q.classic_drops > 0
        assert q.stats.dropped >= q.classic_drops

    def test_ecn_classic_marks_instead(self):
        clock = FakeClock()
        q = self.make_dualpi2(clock, ecn_classic=True)
        for _ in range(400):
            q.enqueue(make_packet(ecn=ECN_ECT0))
            clock.advance(0.01)
            if len(q) > 20:
                q.dequeue()
        assert q.classic_marks > 0
        assert q.classic_drops == 0

    def test_capacity_spans_both_queues(self):
        clock = FakeClock()
        q = self.make_dualpi2(clock, capacity_packets=2)
        assert q.enqueue(make_packet(ecn=ECN_ECT1))
        assert q.enqueue(make_packet(ecn=ECN_NOT_ECT))
        assert not q.enqueue(make_packet(ecn=ECN_ECT1))
        assert len(q) == 2 and q.stats.dropped == 1


class TestREDIdleDecay:
    def make_red(self, clock, **kwargs):
        kwargs.setdefault("mean_pkt_time", 0.001)
        return REDQueue(50, 5, 15, weight=0.5, rng=np.random.default_rng(1),
                        clock=clock, **kwargs)

    def test_rng_required_by_signature(self):
        with pytest.raises(TypeError, match="rng"):
            REDQueue(50, 5, 15)

    def test_average_decays_over_idle_period(self):
        clock = FakeClock()
        q = self.make_red(clock)
        for _ in range(10):
            q.enqueue(make_packet())
        avg_loaded = q.avg
        assert avg_loaded > 1.0
        while q.dequeue() is not None:
            pass
        clock.advance(0.010)  # idle for 10 mean packet times
        q.enqueue(make_packet())
        # decay factor (1-w)^m applied before the arrival's EWMA update:
        # avg = ((1-w)^10 * avg_loaded) * (1-w) + w*0
        expected = avg_loaded * 0.5 ** 10 * 0.5
        assert q.avg == pytest.approx(expected)

    def test_no_decay_without_idle_gap(self):
        clock = FakeClock()
        q = self.make_red(clock)
        for _ in range(10):
            q.enqueue(make_packet())
        avg_loaded = q.avg
        q.enqueue(make_packet())
        assert q.avg == pytest.approx(0.5 * avg_loaded + 0.5 * 10)

    def test_red_marks_in_early_region(self):
        clock = FakeClock()
        q = REDQueue(1000, 5, 15, max_p=0.5, weight=1.0, ecn=True,
                     rng=np.random.default_rng(1), clock=clock)
        for _ in range(300):
            q.enqueue(make_packet(ecn=ECN_ECT0))
            if len(q) > 12:
                q.dequeue()
        assert q.early_marks > 0 and q.stats.marked == q.early_marks
        assert q.early_drops == 0

    def test_red_non_ect_dropped_even_with_ecn(self):
        clock = FakeClock()
        q = REDQueue(1000, 5, 15, max_p=0.5, weight=1.0, ecn=True,
                     rng=np.random.default_rng(1), clock=clock)
        for _ in range(300):
            q.enqueue(make_packet(ecn=ECN_NOT_ECT))
            if len(q) > 12:
                q.dequeue()
        assert q.early_drops > 0 and q.stats.marked == 0


def _disciplines(clock):
    return [
        DropTailQueue(20, clock=clock),
        REDQueue(20, 2, 8, max_p=0.5, weight=0.5,
                 rng=np.random.default_rng(3), clock=clock),
        REDQueue(20, 2, 8, max_p=0.5, weight=0.5, ecn=True,
                 rng=np.random.default_rng(3), clock=clock),
        CoDelQueue(capacity_packets=20, clock=clock),
        CoDelQueue(capacity_packets=20, ecn=True, clock=clock),
        DualPI2Queue(capacity_packets=20, rng=np.random.default_rng(3),
                     clock=clock),
        DualPI2Queue(capacity_packets=20, rng=np.random.default_rng(3),
                     ecn_classic=True, clock=clock),
    ]


class TestConservationInvariants:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1),
                              st.integers(min_value=0, max_value=3)),
                    min_size=1, max_size=300))
    def test_all_disciplines_conserve_packets_and_bytes(self, ops):
        clock = FakeClock()
        for q in _disciplines(clock):
            arrivals = accepted = delivered = 0
            codepoints = [ECN_NOT_ECT, ECN_ECT0, ECN_ECT1, ECN_CE]
            for op, cp in ops:
                if op == 0:
                    arrivals += 1
                    if q.enqueue(make_packet(ecn=codepoints[cp])):
                        accepted += 1
                else:
                    if q.dequeue() is not None:
                        delivered += 1
                clock.advance(0.004)
            s = q.stats
            head_drops = getattr(q, "head_drops", 0)
            # every arrival is either admitted or dropped at the gate
            assert s.enqueued == accepted, type(q).__name__
            assert s.enqueued + (s.dropped - head_drops) == arrivals, type(q).__name__
            # what was admitted is delivered, head-dropped, or still queued
            assert s.dequeued == delivered + head_drops, type(q).__name__
            assert s.enqueued == s.dequeued + len(q), type(q).__name__
            # bytes balance the same way
            assert s.bytes_enqueued == s.bytes_dequeued + q.bytes_queued
            # a mark never doubles as a drop: all counters are disjoint
            assert s.marked <= s.enqueued
            assert q.bytes_queued >= 0 and len(q) >= 0
