"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SimulationError,
    errors.ScheduleInPastError,
    errors.ConfigurationError,
    errors.TopologyError,
    errors.RoutingError,
    errors.TCPStateError,
    errors.ControlError,
    errors.TuningError,
    errors.ExperimentError,
]


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, errors.ReproError)


def test_schedule_in_past_is_simulation_error():
    assert issubclass(errors.ScheduleInPastError, errors.SimulationError)


def test_routing_error_is_topology_error():
    assert issubclass(errors.RoutingError, errors.TopologyError)


def test_tuning_error_is_control_error():
    assert issubclass(errors.TuningError, errors.ControlError)


def test_catching_base_catches_all():
    for exc_type in ALL_ERRORS:
        with pytest.raises(errors.ReproError):
            raise exc_type("boom")


def test_errors_carry_message():
    err = errors.ConfigurationError("bad value")
    assert "bad value" in str(err)
