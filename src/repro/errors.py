"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleInPastError",
    "ConfigurationError",
    "TopologyError",
    "RoutingError",
    "TCPStateError",
    "ControlError",
    "TuningError",
    "ExperimentError",
    "UnsupportedScenarioError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SimulationError(ReproError):
    """Raised for inconsistencies detected by the discrete-event engine."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled before the current simulation time."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid."""


class TopologyError(ReproError):
    """Raised when a topology is malformed (dangling link, duplicate port...)."""


class RoutingError(TopologyError):
    """Raised when a node has no route for a packet's destination."""


class TCPStateError(ReproError):
    """Raised when a TCP connection is driven through an illegal transition."""


class ControlError(ReproError):
    """Raised by the control-theory substrate (PID, filters, process models)."""


class TuningError(ControlError):
    """Raised when an auto-tuning experiment fails to converge."""


class ExperimentError(ReproError):
    """Raised by the experiment harness (bad sweep, missing result...)."""


class UnsupportedScenarioError(ExperimentError):
    """Raised when a backend cannot execute a declared scenario shape.

    The message names the unsupported feature(s) — e.g. a multi-bottleneck
    graph or per-link loss under the single-flow fluid model — so callers
    know which backend to fall back to.
    """
