"""E12 — multi-flow fluid fairness fast path vs packet engine.

Not a paper artefact: demonstrates the N-flow coupled fluid model (the
fairness fast path).  Two claims are enforced, matching the documented
tolerances:

* a 4-flow 25 s ``MultiFlowSpec`` runs **>=20x faster** on the fluid
  backend than on the packet engine;
* its Jain fairness index lands within **+-0.05** of the packet engine's
  (aggregate goodput within 25 % relative).

Runs in two harnesses:

* ``python -m pytest benchmarks/bench_fluid_fairness.py`` — the usual
  pytest-benchmark suite entry;
* ``PYTHONPATH=src python -m benchmarks.bench_fluid_fairness`` — the CI
  smoke step, which additionally writes the ``BENCH_fluid_fairness.json``
  artifact (packet vs fluid wall-clock, speedup, fairness agreement) so
  the bench trajectory is tracked across commits.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

from repro.fluid import DEFAULT_FAIRNESS_TOLERANCE
from repro.spec import MultiFlowSpec, dumbbell, execute
from repro.workloads.scenarios import PathConfig
from repro.obs.clock import wall_clock

#: Speedup the fluid fairness path must deliver on the default 25 s run.
REQUIRED_SPEEDUP = 20.0

#: Agreement thresholds — the cross-validation's documented tolerances,
#: imported so this gate and `repro validate` can never silently diverge.
JAIN_ATOL = DEFAULT_FAIRNESS_TOLERANCE.jain_atol
AGGREGATE_RTOL = DEFAULT_FAIRNESS_TOLERANCE.aggregate_rtol

#: Default artifact path (repository root, like the BENCH_* convention).
DEFAULT_ARTIFACT = "BENCH_fluid_fairness.json"


def run_fairness_bench(duration: float = 25.0, n_flows: int = 4,
                       seed: int = 1,
                       config: PathConfig | None = None) -> dict:
    """Time the same N-flow mix on both backends; return the artifact payload."""
    cfg = config if config is not None else PathConfig()
    scenario = dumbbell(cfg, n_flows, ccs="reno",
                        start_times=tuple(0.1 * i for i in range(n_flows)))
    spec = MultiFlowSpec(scenario=scenario, duration=duration, seed=seed)

    t0 = wall_clock()
    packet = execute(spec)
    packet_wall = wall_clock() - t0
    t0 = wall_clock()
    fluid = execute(spec.with_backend("fluid"))
    fluid_wall = wall_clock() - t0

    speedup = packet_wall / max(fluid_wall, 1e-9)
    aggregate_err = (abs(fluid.aggregate_goodput_bps - packet.aggregate_goodput_bps)
                     / max(packet.aggregate_goodput_bps, 1e-9))
    return {
        "benchmark": "fluid_fairness",
        "n_flows": n_flows,
        "duration_s": duration,
        "seed": seed,
        "bottleneck_mbps": cfg.bottleneck_rate_bps / 1e6,
        "rtt_ms": cfg.rtt * 1e3,
        "packet_wall_s": packet_wall,
        "fluid_wall_s": fluid_wall,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "packet_jain": packet.jain_index,
        "fluid_jain": fluid.jain_index,
        "jain_abs_error": abs(fluid.jain_index - packet.jain_index),
        "jain_atol": JAIN_ATOL,
        "packet_aggregate_bps": packet.aggregate_goodput_bps,
        "fluid_aggregate_bps": fluid.aggregate_goodput_bps,
        "aggregate_rel_error": aggregate_err,
        "aggregate_rtol": AGGREGATE_RTOL,
    }


def render_report(payload: dict) -> str:
    return (
        f"E12 — multi-flow fluid fairness fast path "
        f"({payload['n_flows']} flows, {payload['duration_s']:.0f} s run)\n"
        f"packet {payload['packet_wall_s']:7.2f}s   "
        f"fluid {payload['fluid_wall_s'] * 1e3:7.1f}ms   "
        f"speedup {payload['speedup']:6.0f}x (need "
        f">={payload['required_speedup']:.0f}x)\n"
        f"Jain {payload['fluid_jain']:.4f} vs {payload['packet_jain']:.4f} "
        f"(|d| {payload['jain_abs_error']:.4f}, atol {payload['jain_atol']:.2f})   "
        f"aggregate {payload['fluid_aggregate_bps'] / 1e6:6.2f} vs "
        f"{payload['packet_aggregate_bps'] / 1e6:6.2f} Mbit/s "
        f"(err {payload['aggregate_rel_error']:5.1%})"
    )


def payload_failures(payload: dict) -> list[str]:
    """Which enforced claims the measured payload violates."""
    failures = []
    if payload["speedup"] < payload["required_speedup"]:
        failures.append(
            f"fluid fairness path only {payload['speedup']:.0f}x faster "
            f"(need {payload['required_speedup']:.0f}x)")
    if payload["jain_abs_error"] > payload["jain_atol"]:
        failures.append(
            f"Jain index differs by {payload['jain_abs_error']:.3f} "
            f"(> {payload['jain_atol']:.2f})")
    if payload["aggregate_rel_error"] > payload["aggregate_rtol"]:
        failures.append(
            f"aggregate goodput differs by {payload['aggregate_rel_error']:.1%} "
            f"(> {payload['aggregate_rtol']:.0%})")
    return failures


def write_artifact(payload: dict, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_fluid_fairness_speedup_and_agreement(benchmark, bench_once):
    """4-flow 25 s mix: fluid must be >=20x faster and fairness-faithful."""
    from .conftest import emit, scaled

    payload = bench_once(run_fairness_bench, scaled(25.0))
    emit(benchmark, render_report(payload),
         speedup=payload["speedup"],
         jain_abs_error=payload["jain_abs_error"])
    failures = payload_failures(payload)
    assert not failures, "; ".join(failures)


def main(argv: Sequence[str] | None = None) -> int:
    """CI smoke entry: run the bench, print the report, write the artifact."""
    import argparse

    parser = argparse.ArgumentParser(
        description="multi-flow fluid fairness benchmark (packet vs fluid)")
    parser.add_argument("--duration", type=float, default=25.0)
    parser.add_argument("--flows", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("-o", "--output", default=DEFAULT_ARTIFACT,
                        help="artifact path (default: %(default)s)")
    args = parser.parse_args(argv)
    payload = run_fairness_bench(duration=args.duration, n_flows=args.flows,
                                 seed=args.seed)
    print(render_report(payload))
    path = write_artifact(payload, args.output)
    print(f"wrote {path}")
    failures = payload_failures(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
