"""repro — a simulation-based reproduction of "Restricted Slow-Start for TCP".

Paper: W. Allcock, S. Hegde, R. Kettimuthu, *Restricted Slow-Start for TCP*,
IEEE Cluster 2005.

The package is organised as substrates (discrete-event engine, network,
hosts, TCP) plus the paper's contribution (:mod:`repro.core`) and the
experiment harness that regenerates the paper's figure and headline numbers
(:mod:`repro.experiments`).  See ``DESIGN.md`` for the full inventory and
``EXPERIMENTS.md`` for paper-vs-measured results.

Quickstart::

    from repro.experiments import run_single_flow

    standard = run_single_flow("reno", duration=25.0)
    restricted = run_single_flow("restricted", duration=25.0)
    print(standard.goodput_bps, restricted.goodput_bps)
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
