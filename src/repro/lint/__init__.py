"""Repo-specific determinism and spec-hygiene static analysis.

``repro lint`` is an AST-based pass over the source tree with checkers for
the invariants the reproduction's caching and cross-validation stories rest
on — chiefly that a result is a pure function of its spec (seed included):

========  ==================================================================
code      what it flags
========  ==================================================================
REP001    unseeded / global randomness (``random.*``, ``np.random.*``)
          outside :mod:`repro.sim.randomness` — randomness must flow
          through named ``sim.rng(...)`` streams
REP002    wall-clock reads (``time.time``, ``time.monotonic``,
          ``datetime.now``) — simulation code is sim-time only, and a
          wall-clock read anywhere in a result-affecting path poisons
          ``spec.cache_key()`` memoization
REP003    float ``==`` / ``!=`` comparisons in the sim/fluid/net/tcp hot
          paths
REP004    mutable default arguments
REP005    iteration order of a ``set`` escaping into an ordered construct
          (list/tuple/join/for) without ``sorted(...)``
REP006    broad or bare ``except`` swallowing exceptions in simulation
          paths
REP000    lint-infrastructure problems: unparsable files, malformed or
          unused suppression pragmas
========  ==================================================================

Findings are suppressed inline with a pragma naming a reason::

    cutoff = time.time()  # repro: allow[REP002] gc cutoff is wall-clock by contract

or collectively through a JSON baseline file (see :mod:`repro.lint.baseline`)
so existing findings ratchet down, never up.

``repro lint --specs`` runs the reflection-based spec auditor
(:mod:`repro.lint.specaudit`) over the spec registry instead.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .checkers import CHECKER_CODES, CHECKER_DOCS
from .engine import LintReport, lint_paths, lint_source
from .findings import Finding
from .specaudit import SPEC_AUDIT_CODES, audit_specs

__all__ = [
    "Finding",
    "LintReport",
    "lint_paths",
    "lint_source",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "CHECKER_CODES",
    "CHECKER_DOCS",
    "SPEC_AUDIT_CODES",
    "audit_specs",
    "main",
]


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point (``repro lint``); returns a process exit code."""
    from .cli import main as _main

    return _main(argv)
