"""Tests for routers and topology/route construction."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError, TopologyError
from repro.host import Host
from repro.net import DropTailQueue, Packet, Router, Topology, default_queue_factory
from repro.net.interface import NetworkInterface
from repro.units import Mbps


def star_topology(sim):
    """host_a -- router -- host_b."""
    topo = Topology(sim)
    a = Host(sim, "a", 1)
    b = Host(sim, "b", 2)
    r = Router("r", 3)
    for node in (a, b, r):
        topo.add_node(node)
    topo.add_link(a, r, Mbps(10), 0.001)
    topo.add_link(r, b, Mbps(10), 0.001)
    topo.build_routes()
    return topo, a, b, r


class TestRouter:
    def test_forwards_toward_destination(self, sim):
        topo, a, b, r = star_topology(sim)
        a.send_packet(Packet(1000, src=a.address, dst=b.address))
        sim.run()
        assert b.udp_packets_received == 1
        assert r.packets_forwarded == 1

    def test_packet_addressed_to_router_is_consumed(self, sim):
        topo, a, b, r = star_topology(sim)
        a.send_packet(Packet(500, src=a.address, dst=r.address))
        sim.run()
        assert r.packets_received == 1
        assert r.packets_forwarded == 0

    def test_no_route_counts_drop(self, sim):
        topo, a, b, r = star_topology(sim)
        a.send_packet(Packet(500, src=a.address, dst=99))
        sim.run()
        assert r.no_route_drops == 1

    def test_route_for_unknown_raises(self, sim):
        r = Router("r", 1)
        with pytest.raises(RoutingError):
            r.route_for(42)

    def test_set_route_rejects_foreign_interface(self, sim):
        topo, a, b, r = star_topology(sim)
        foreign = a.default_interface
        with pytest.raises(RoutingError):
            r.set_route(b.address, foreign)

    def test_router_buffer_overflow_counts_drops(self, sim):
        topo = Topology(sim)
        a = Host(sim, "a", 1)
        b = Host(sim, "b", 2)
        r = Router("r", 3)
        for node in (a, b, r):
            topo.add_node(node)
        # fast ingress, slow egress with a tiny buffer => router drops
        topo.add_link(a, r, Mbps(100), 0.0,
                      queue_factory=default_queue_factory(1000))
        topo.add_link(r, b, Mbps(1), 0.0,
                      queue_factory=default_queue_factory(2))
        topo.build_routes()
        for _ in range(20):
            a.send_packet(Packet(1500, src=a.address, dst=b.address))
        sim.run()
        assert r.packets_dropped > 0
        assert b.udp_packets_received < 20

    def test_total_buffer_occupancy(self, sim):
        topo, a, b, r = star_topology(sim)
        assert r.total_buffer_occupancy() == 0


class TestTopology:
    def test_duplicate_node_name_rejected(self, sim):
        topo = Topology(sim)
        topo.add_node(Host(sim, "x", 1))
        with pytest.raises(TopologyError):
            topo.add_node(Host(sim, "x", 2))

    def test_duplicate_address_rejected(self, sim):
        topo = Topology(sim)
        topo.add_node(Host(sim, "x", 1))
        with pytest.raises(TopologyError):
            topo.add_node(Host(sim, "y", 1))

    def test_link_requires_registered_nodes(self, sim):
        topo = Topology(sim)
        a = Host(sim, "a", 1)
        b = Host(sim, "b", 2)
        topo.add_node(a)
        with pytest.raises(TopologyError):
            topo.add_link(a, b, Mbps(1), 0.001)

    def test_link_creates_two_interfaces(self, sim):
        topo = Topology(sim)
        a = Host(sim, "a", 1)
        b = Host(sim, "b", 2)
        topo.add_node(a)
        topo.add_node(b)
        spec = topo.add_link(a, b, Mbps(1), 0.001)
        assert spec.iface_ab.node is a
        assert spec.iface_ba.node is b
        assert spec.iface_ab.peer_node is b
        assert spec.iface_ba.peer_node is a

    def test_node_lookup(self, sim):
        topo, a, b, r = star_topology(sim)
        assert topo.node("a") is a
        with pytest.raises(TopologyError):
            topo.node("nope")

    def test_hosts_and_routers_listing(self, sim):
        topo, a, b, r = star_topology(sim)
        assert set(n.name for n in topo.hosts()) == {"a", "b"}
        assert [n.name for n in topo.routers()] == ["r"]

    def test_interfaces_iteration(self, sim):
        topo, _, _, _ = star_topology(sim)
        assert len(list(topo.interfaces())) == 4  # 2 links x 2 directions

    def test_path_rtt(self, sim):
        topo, a, b, r = star_topology(sim)
        assert topo.path_rtt("a", "b") == pytest.approx(0.004)

    def test_routes_on_chain_of_routers(self, sim):
        topo = Topology(sim)
        a = Host(sim, "a", 1)
        b = Host(sim, "b", 2)
        r1 = Router("r1", 3)
        r2 = Router("r2", 4)
        for node in (a, b, r1, r2):
            topo.add_node(node)
        topo.add_link(a, r1, Mbps(10), 0.001)
        topo.add_link(r1, r2, Mbps(10), 0.001)
        topo.add_link(r2, b, Mbps(10), 0.001)
        topo.build_routes()
        a.send_packet(Packet(800, src=a.address, dst=b.address))
        sim.run()
        assert b.udp_packets_received == 1
        assert r1.packets_forwarded == 1
        assert r2.packets_forwarded == 1

    def test_disconnected_topology_rejected(self, sim):
        topo = Topology(sim)
        topo.add_node(Host(sim, "a", 1))
        topo.add_node(Host(sim, "b", 2))
        with pytest.raises(TopologyError):
            topo.build_routes()

    def test_interface_to_unknown_neighbor_raises(self, sim):
        topo, a, b, r = star_topology(sim)
        with pytest.raises(TopologyError):
            r.interface_to(999)

    def test_default_queue_factory_capacity(self, sim):
        factory = default_queue_factory(7)
        queue = factory(lambda: 0.0, "q")
        assert isinstance(queue, DropTailQueue)
        assert queue.capacity_packets == 7
